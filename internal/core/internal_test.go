package core

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"mio/internal/baseline"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/geom"
	"mio/internal/grid"
)

func TestInsertTopK(t *testing.T) {
	var top []Scored
	for _, s := range []Scored{{1, 5}, {2, 9}, {3, 2}, {4, 9}, {5, 7}} {
		top = insertTopK(top, s, 3)
	}
	// 9 (obj 2), 9 (obj 4, after 2), 7 (obj 5).
	want := []Scored{{2, 9}, {4, 9}, {5, 7}}
	if !reflect.DeepEqual(top, want) {
		t.Fatalf("top = %v, want %v", top, want)
	}
	// Inserting below the kth is a no-op.
	if got := insertTopK(top, Scored{6, 1}, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("low insert changed top: %v", got)
	}
	// k=1 keeps only the best; ties keep the earlier entry.
	one := insertTopK(nil, Scored{1, 4}, 1)
	one = insertTopK(one, Scored{2, 4}, 1)
	if !reflect.DeepEqual(one, []Scored{{1, 4}}) {
		t.Fatalf("tie-break = %v", one)
	}
}

func TestInsertTopKQuickSorted(t *testing.T) {
	f := func(scores []uint8, k8 uint8) bool {
		k := int(k8%10) + 1
		var top []Scored
		for i, s := range scores {
			top = insertTopK(top, Scored{Obj: i, Score: int(s)}, k)
		}
		if len(top) > k {
			return false
		}
		// Must equal the k largest values, sorted descending.
		all := make([]int, len(scores))
		for i, s := range scores {
			all[i] = int(s)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(all)))
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := make([]int, len(top))
		for i, s := range top {
			got[i] = s.Score
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKthHighest(t *testing.T) {
	e := &Engine{}
	q := &query{e: e, k: 1}
	if got := q.kthHighest([]int32{3, 9, 1}); got != 9 {
		t.Fatalf("k=1: %d", got)
	}
	q.k = 2
	if got := q.kthHighest([]int32{3, 9, 1}); got != 3 {
		t.Fatalf("k=2: %d", got)
	}
	q.k = 5
	if got := q.kthHighest([]int32{3, 9, 1}); got != 0 {
		t.Fatalf("k>n: %d", got)
	}
	if got := kthHighestInt32([]int32{5, 2, 8}, 2); got != 5 {
		t.Fatalf("kthHighestInt32: %d", got)
	}
	if got := kthHighestInt32([]int32{5, 2, 8}, 1); got != 8 {
		t.Fatalf("kthHighestInt32 k=1: %d", got)
	}
}

func TestCandidateOrdering(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 80, M: 6, FieldSize: 150, Spread: 10, Seed: 77})
	eng, _ := NewEngine(ds, Options{})
	q := newQuery(eng, 8, 1)
	q.gridMapping()
	q.lowerBounding()
	cand := q.upperBounding(0)
	for i := 1; i < len(cand); i++ {
		if cand[i].tauUpp > cand[i-1].tauUpp {
			t.Fatal("candidates not sorted by upper bound")
		}
		if cand[i].tauUpp == cand[i-1].tauUpp && cand[i].obj < cand[i-1].obj {
			t.Fatal("tie-break not by object id")
		}
	}
	// threshold 0 keeps everyone.
	if len(cand) != ds.N() {
		t.Fatalf("candidates = %d, want %d", len(cand), ds.N())
	}
}

func TestLabelsActuallyPrunePoints(t *testing.T) {
	// After a collecting run, a meaningful number of points must carry
	// cleared label bits, and the labeled re-run must do less work.
	ds := data.GenTrajectory(data.TrajectoryConfig{
		N: 200, M: 30, Groups: 6, FieldSize: 2500, Speed: 20, FollowStd: 8, Solo: 0.4, Seed: 88,
	})
	store := labelstore.NewStore()
	eng, _ := NewEngine(ds, Options{Labels: store})
	first, err := eng.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := store.Get(10)
	if !ok {
		t.Fatal("labels not stored")
	}
	mapped, upper, verify := l.Counts()
	if mapped == 0 {
		t.Error("Labeling-1 never fired on sparse trajectory data")
	}
	if upper == 0 {
		t.Error("Labeling-2 never fired")
	}
	_ = verify // Labeling-3 fires only for verified candidates; may be 0
	second, err := eng.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.UsedLabels {
		t.Fatal("labels unused on re-run")
	}
	if second.Best.Score != first.Best.Score {
		t.Fatalf("labels changed the answer: %d vs %d", second.Best.Score, first.Best.Score)
	}
	if second.Stats.GridMapping >= first.Stats.GridMapping*2 {
		t.Errorf("labeled grid mapping slower: %v vs %v", second.Stats.GridMapping, first.Stats.GridMapping)
	}
	// Labeled index must not be larger: 0** points are never mapped.
	if second.Stats.IndexBytes > first.Stats.IndexBytes {
		t.Errorf("labeled index grew: %d > %d", second.Stats.IndexBytes, first.Stats.IndexBytes)
	}
}

func TestDisableCollect(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 30, M: 5, FieldSize: 60, Spread: 6, Seed: 90})
	store := labelstore.NewStore()
	eng, _ := NewEngine(ds, Options{Labels: store, DisableCollect: true})
	if _, err := eng.Run(5); err != nil {
		t.Fatal(err)
	}
	if store.Has(5) {
		t.Fatal("labels collected despite DisableCollect")
	}
}

func TestParallelGridMappingEquivalence(t *testing.T) {
	// The merged parallel BIGrid must be structurally identical to the
	// serial one: same cells, same bitsets, same key-list sets.
	ds := data.GenNeuron(data.NeuronConfig{
		N: 30, M: 80, Clusters: 3, FieldSize: 120, ClusterStd: 15, StepLen: 1, Branches: 3, Seed: 91,
	})
	eng, _ := NewEngine(ds, Options{})
	qs := newQuery(eng, 5, 1)
	qs.gridMapping()

	engP, _ := NewEngine(ds, Options{Workers: 4})
	qp := newQuery(engP, 5, 1)
	qp.gridMapping()

	if qs.idx.small.Len() != qp.idx.small.Len() {
		t.Fatalf("small cells: %d vs %d", qs.idx.small.Len(), qp.idx.small.Len())
	}
	if qs.idx.large.Len() != qp.idx.large.Len() {
		t.Fatalf("large cells: %d vs %d", qs.idx.large.Len(), qp.idx.large.Len())
	}
	// Key lists may differ in order but must be equal as sets.
	for i := range qs.idx.keyLists {
		a := keySet(qs.idx.keyLists[i])
		b := keySet(qp.idx.keyLists[i])
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("object %d key lists differ", i)
		}
	}
	// Groups must cover the same points per object.
	for i := range qs.idx.groups {
		if groupPointCount(qs.idx.groups[i]) != groupPointCount(qp.idx.groups[i]) {
			t.Fatalf("object %d group coverage differs", i)
		}
	}
}

func keySet(keys []grid.Key) map[grid.Key]bool {
	m := make(map[grid.Key]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func groupPointCount(gs []pointGroup) int {
	n := 0
	for _, g := range gs {
		n += len(g.pts)
	}
	return n
}

func TestScoreStateMaskReuse(t *testing.T) {
	// Two objects sharing a straight line of near-identical points
	// exercise the consecutive-same-cell mask reuse; scores must match
	// the oracle exactly.
	var a, b []geom.Point
	for i := 0; i < 40; i++ {
		a = append(a, geom.Pt(float64(i)*0.2, 0, 0))
		b = append(b, geom.Pt(float64(i)*0.2, 0.5, 0))
	}
	ds := &data.Dataset{Objects: []data.Object{
		{ID: 0, Pts: a},
		{ID: 1, Pts: b},
		{ID: 2, Pts: []geom.Point{geom.Pt(100, 100, 100)}},
	}}
	oracle := baseline.NLScores(ds, 1)
	eng, _ := NewEngine(ds, Options{})
	res, err := eng.RunTopK(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.TopK {
		if oracle[s.Obj] != s.Score {
			t.Fatalf("obj %d: %d vs oracle %d", s.Obj, s.Score, oracle[s.Obj])
		}
	}
}

func TestQuickBoundsSandwich(t *testing.T) {
	// Property: for random micro-datasets and thresholds, lower ≤ exact
	// ≤ upper for every object.
	type input struct {
		Seed int64
		R    uint8
	}
	f := func(in input) bool {
		r := 1 + float64(in.R%20)
		ds := data.GenUniform(data.UniformConfig{
			N: 25, M: 4, FieldSize: 80, Spread: 8, Seed: in.Seed,
		})
		oracle := baseline.NLScores(ds, r)
		eng, _ := NewEngine(ds, Options{})
		q := newQuery(eng, r, 1)
		q.gridMapping()
		q.lowerBounding()
		q.upperBounding(0)
		for i, exact := range oracle {
			if int(q.tauLow[i]) > exact || int(q.tauUpp[i]) < exact {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
