package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"mio/internal/bitmap"
	"mio/internal/data"
	"mio/internal/geom"
	"mio/internal/grid"
	"mio/internal/parallel"
)

// This file implements the temporal extension of Appendix B: objects
// interact iff they have a point pair within distance r generated
// within δ time of each other. The time domain is decomposed into δ
// buckets and a BIGrid-style structure is built per bucket; two points
// in the same bucket always satisfy the temporal constraint (bucket
// span < δ), so same-bucket small-grid cells give lower bounds, while
// upper-bounding and verification consult a bucket and its two
// neighbours. δ = 0 is the special case the appendix calls out: one
// structure per distinct generation time, consulted alone.

// tKey addresses a cell of one time bucket's grid.
type tKey struct {
	bucket int32
	cell   grid.Key
}

// tPosting mirrors grid.Posting with per-point generation times.
type tPosting struct {
	obj   int32
	pts   []geom.Point
	times []float64
}

type tCell struct {
	b        *bitmap.Compressed
	postings []tPosting
}

func (c *tCell) posting(obj int) *tPosting {
	i := sort.Search(len(c.postings), func(i int) bool { return int(c.postings[i].obj) >= obj })
	if i < len(c.postings) && int(c.postings[i].obj) == obj {
		return &c.postings[i]
	}
	return nil
}

// TemporalEngine processes spatio-temporal MIO queries over a dataset
// whose points carry generation times.
type TemporalEngine struct {
	ds   *data.Dataset
	opts Options
}

// NewTemporalEngine returns an engine over ds, whose objects must all
// carry timestamps.
func NewTemporalEngine(ds *data.Dataset, opts Options) (*TemporalEngine, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if ds.N() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	for i := range ds.Objects {
		if !ds.Objects[i].Temporal() {
			return nil, fmt.Errorf("core: object %d has no timestamps", i)
		}
	}
	return &TemporalEngine{ds: ds, opts: opts}, nil
}

// tQuery is the per-query state of the temporal pipeline.
type tQuery struct {
	e     *TemporalEngine
	r, r2 float64
	delta float64
	k     int
	n     int

	small map[tKey]*bitmap.Compressed
	large map[tKey]*tCell
	adj   map[tKey]*bitmap.Compressed // memoised 27-cell unions per bucket
	adjMu sync.Mutex                  // guards adj during parallel phases

	// exactTimes maps distinct timestamps to bucket ids when δ = 0.
	exactTimes map[float64]int32

	tauUpp []int32
}

// Run processes a spatio-temporal MIO query.
func (e *TemporalEngine) Run(r, delta float64) (*Result, error) { return e.RunTopK(r, delta, 1) }

// RunTopK processes the top-k spatio-temporal variant. delta may be
// zero (points must share their generation time exactly).
func (e *TemporalEngine) RunTopK(r, delta float64, k int) (*Result, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: distance threshold must be positive, got %g", r)
	}
	if delta < 0 {
		return nil, fmt.Errorf("core: temporal threshold must be non-negative, got %g", delta)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be at least 1, got %d", k)
	}
	if k > e.ds.N() {
		k = e.ds.N()
	}
	q := &tQuery{
		e: e, r: r, r2: r * r, delta: delta, k: k, n: e.ds.N(),
		small: make(map[tKey]*bitmap.Compressed),
		large: make(map[tKey]*tCell),
		adj:   make(map[tKey]*bitmap.Compressed),
	}
	if delta == 0 {
		q.exactTimes = make(map[float64]int32)
	}
	q.build()
	threshold := q.lowerBound()
	cand := q.upperBound(threshold)
	top := q.verify(cand)
	res := &Result{TopK: top}
	if len(top) > 0 {
		res.Best = top[0]
	}
	return res, nil
}

// bucketOf maps a timestamp to its bucket id. With δ = 0 it interns
// distinct timestamps; every timestamp is registered during build, so
// later phases (including parallel ones) only read the map.
func (q *tQuery) bucketOf(t float64) int32 {
	if q.delta == 0 {
		id, ok := q.exactTimes[t]
		if !ok {
			id = int32(len(q.exactTimes))
			q.exactTimes[t] = id
		}
		return id
	}
	return int32(math.Floor(t / q.delta))
}

// bucketWindow returns the buckets that can hold temporal neighbours of
// bucket b.
func (q *tQuery) bucketWindow(b int32) [3]int32 {
	if q.delta == 0 {
		return [3]int32{b, b, b}
	}
	return [3]int32{b - 1, b, b + 1}
}

func (q *tQuery) build() {
	dims := q.e.opts.dims()
	smallW := grid.SmallWidth(q.r, dims)
	largeW := grid.LargeWidth(q.r)
	for i := range q.e.ds.Objects {
		o := &q.e.ds.Objects[i]
		for j, p := range o.Pts {
			b := q.bucketOf(o.Times[j])
			sk := tKey{bucket: b, cell: grid.KeyFor(p, smallW)}
			sb, ok := q.small[sk]
			if !ok {
				sb = bitmap.New()
				q.small[sk] = sb
			}
			sb.Set(i)
			lk := tKey{bucket: b, cell: grid.KeyFor(p, largeW)}
			lc, ok := q.large[lk]
			if !ok {
				lc = &tCell{b: bitmap.New()}
				q.large[lk] = lc
			}
			lc.b.Set(i)
			if n := len(lc.postings); n > 0 && int(lc.postings[n-1].obj) == i {
				lc.postings[n-1].pts = append(lc.postings[n-1].pts, p)
				lc.postings[n-1].times = append(lc.postings[n-1].times, o.Times[j])
			} else {
				lc.postings = append(lc.postings, tPosting{
					obj: int32(i), pts: []geom.Point{p}, times: []float64{o.Times[j]},
				})
			}
		}
	}
}

// lowerBound ORs the same-bucket small-grid cells of every point: those
// pairs satisfy both constraints unconditionally. With multiple workers
// configured, objects are partitioned greedily by point count and each
// worker uses a local scratch bitset (§IV applied to Appendix B).
func (q *tQuery) lowerBound() int {
	dims := q.e.opts.dims()
	smallW := grid.SmallWidth(q.r, dims)
	tauLow := make([]int32, q.n)
	one := func(i int, scratch *bitmap.Scratch) {
		o := &q.e.ds.Objects[i]
		scratch.Reset()
		for j, p := range o.Pts {
			sk := tKey{bucket: q.bucketOf(o.Times[j]), cell: grid.KeyFor(p, smallW)}
			if sb := q.small[sk]; sb != nil && sb.Cardinality() >= 2 {
				scratch.OrCompressed(sb)
			}
		}
		if c := scratch.Cardinality(); c > 0 {
			tauLow[i] = int32(c - 1)
		}
	}
	if t := q.e.opts.workers(); t > 1 {
		buckets := parallel.Greedy(objectPointWeights(q.e.ds), t)
		parallel.Run(t, func(w int) {
			scratch := bitmap.NewScratch(q.n)
			for _, i := range buckets[w] {
				one(i, scratch)
			}
		})
	} else {
		scratch := bitmap.NewScratch(q.n)
		for i := 0; i < q.n; i++ {
			one(i, scratch)
		}
	}
	return kthHighestInt32(tauLow, q.k)
}

// objectPointWeights returns per-object point counts for greedy
// partitioning.
func objectPointWeights(ds *data.Dataset) []int {
	w := make([]int, ds.N())
	for i := range ds.Objects {
		w[i] = len(ds.Objects[i].Pts)
	}
	return w
}

// adjUnion returns the OR of b(c) over the 27-cell neighbourhood of
// (bucket, cell), memoised. It works even when the anchor cell itself
// is empty (a temporal neighbour bucket may populate only nearby
// cells). Safe for concurrent use: duplicated computation is possible
// under contention but the published value is deterministic.
func (q *tQuery) adjUnion(k tKey) *bitmap.Compressed {
	q.adjMu.Lock()
	if a, ok := q.adj[k]; ok {
		q.adjMu.Unlock()
		return a
	}
	q.adjMu.Unlock()
	var neigh [27]grid.Key
	bms := make([]*bitmap.Compressed, 0, 27)
	for _, nk := range k.cell.NeighborsAndSelf(neigh[:0]) {
		if c := q.large[tKey{bucket: k.bucket, cell: nk}]; c != nil {
			bms = append(bms, c.b)
		}
	}
	a := bitmap.OrAll(bms)
	q.adjMu.Lock()
	if prev, ok := q.adj[k]; ok {
		a = prev
	} else {
		q.adj[k] = a
	}
	q.adjMu.Unlock()
	return a
}

// upperBound ORs the adjacency unions of each point's cell across its
// temporal bucket window, in parallel when workers are configured.
func (q *tQuery) upperBound(threshold int) []candidate {
	largeW := grid.LargeWidth(q.r)
	q.tauUpp = make([]int32, q.n)
	one := func(i int, scratch *bitmap.Scratch) {
		o := &q.e.ds.Objects[i]
		scratch.Reset()
		for j, p := range o.Pts {
			b := q.bucketOf(o.Times[j])
			ck := grid.KeyFor(p, largeW)
			win := q.bucketWindow(b)
			for wi, wb := range win {
				if wi > 0 && wb == win[wi-1] {
					continue // δ=0 collapses the window
				}
				scratch.OrCompressed(q.adjUnion(tKey{bucket: wb, cell: ck}))
			}
		}
		if c := scratch.Cardinality(); c > 0 {
			q.tauUpp[i] = int32(c - 1)
		}
	}
	if t := q.e.opts.workers(); t > 1 {
		buckets := parallel.Greedy(objectPointWeights(q.e.ds), t)
		parallel.Run(t, func(w int) {
			scratch := bitmap.NewScratch(q.n)
			for _, i := range buckets[w] {
				one(i, scratch)
			}
		})
	} else {
		scratch := bitmap.NewScratch(q.n)
		for i := 0; i < q.n; i++ {
			one(i, scratch)
		}
	}
	cand := make([]candidate, 0, q.n/4+1)
	for i := 0; i < q.n; i++ {
		if int(q.tauUpp[i]) >= threshold {
			cand = append(cand, candidate{obj: int32(i), tauUpp: q.tauUpp[i]})
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].tauUpp != cand[b].tauUpp {
			return cand[a].tauUpp > cand[b].tauUpp
		}
		return cand[a].obj < cand[b].obj
	})
	return cand
}

// verify computes exact scores best-first with the Corollary 1 cut.
func (q *tQuery) verify(cand []candidate) []Scored {
	top := make([]Scored, 0, q.k)
	kthScore := func() int {
		if len(top) < q.k {
			return -1
		}
		return top[q.k-1].Score
	}
	largeW := grid.LargeWidth(q.r)
	bOi := bitmap.NewScratch(q.n)
	mask := bitmap.NewScratch(q.n)
	var neigh [27]grid.Key
	for _, c := range cand {
		if int(c.tauUpp) < kthScore() {
			break // strict, tie-complete cut; see verification()
		}
		i := int(c.obj)
		o := &q.e.ds.Objects[i]
		bOi.Reset()
		bOi.Set(i)
		for j, p := range o.Pts {
			pt := o.Times[j]
			b := q.bucketOf(pt)
			ck := grid.KeyFor(p, largeW)
			win := q.bucketWindow(b)
			for wi, wb := range win {
				if wi > 0 && wb == win[wi-1] {
					continue
				}
				mask.AndNotFromCompressed(q.adjUnion(tKey{bucket: wb, cell: ck}), bOi)
				if mask.Cardinality() == 0 {
					continue
				}
				for _, nk := range ck.NeighborsAndSelf(neigh[:0]) {
					cell := q.large[tKey{bucket: wb, cell: nk}]
					if cell == nil {
						continue
					}
					mask.ForEach(func(jj int) bool {
						post := cell.posting(jj)
						if post == nil {
							return true
						}
						for pi, pp := range post.pts {
							//lint:ignore dist2 temporal filter interleaves the per-point time check, which the spatial batch kernel cannot express
							if geom.Dist2(p, pp) <= q.r2 && math.Abs(pt-post.times[pi]) <= q.delta {
								bOi.Set(jj)
								mask.Clear(jj)
								break
							}
						}
						return true
					})
					if mask.Cardinality() == 0 {
						break
					}
				}
			}
		}
		top = insertTopK(top, Scored{Obj: i, Score: bOi.Cardinality() - 1}, q.k)
	}
	return top
}

// kthHighestInt32 returns the k-th highest value of vals (0 when out of
// range).
func kthHighestInt32(vals []int32, k int) int {
	if k == 1 {
		best := int32(0)
		for _, v := range vals {
			if v > best {
				best = v
			}
		}
		return int(best)
	}
	cp := make([]int32, len(vals))
	copy(cp, vals)
	sort.Slice(cp, func(a, b int) bool { return cp[a] > cp[b] })
	if k-1 < len(cp) {
		return int(cp[k-1])
	}
	return 0
}
