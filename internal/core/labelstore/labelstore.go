// Package labelstore persists the per-point labels of §III-D. A label
// is three bits (Definition 4), initialised to 111:
//
//	bit 0 (Labeling-1): 0 ⇒ the point interacts with no other object at
//	  any r with this ⌈r⌉ — it can be skipped everywhere, including
//	  grid mapping (Lemma 3).
//	bit 1 (Labeling-2): 0 ⇒ the point's b^adj OR contributed nothing
//	  during upper-bounding — skip it there.
//	bit 2 (Labeling-3): 0 ⇒ the point's candidate mask was empty during
//	  verification — skip it there.
//
// Labels are specific to the large-grid, i.e. to ⌈r⌉: every query whose
// threshold shares the ceiling can reuse them. The number of issued
// queries is unbounded, so the store can spill label sets to external
// memory (one file per ⌈r⌉) and load them back on demand, matching the
// paper's O(nm/B) I/O analysis.
package labelstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mio/internal/durable"
)

// Label bit masks.
const (
	BitMapped uint8 = 1 << 0 // Labeling-1 (cleared ⇒ prune point entirely)
	BitUpper  uint8 = 1 << 1 // Labeling-2 (cleared ⇒ skip in upper-bounding)
	BitVerify uint8 = 1 << 2 // Labeling-3 (cleared ⇒ skip in verification)

	// Initial is the all-ones label every point starts with.
	Initial uint8 = BitMapped | BitUpper | BitVerify
)

// Labels holds one label byte per point of every object, for one ⌈r⌉.
type Labels struct {
	// PerObject[i][j] is the label of point j of object i.
	PerObject [][]uint8
}

// NewLabels allocates all-ones labels for objects with the given point
// counts.
func NewLabels(pointCounts []int) *Labels {
	l := &Labels{PerObject: make([][]uint8, len(pointCounts))}
	for i, n := range pointCounts {
		row := make([]uint8, n)
		for j := range row {
			row[j] = Initial
		}
		l.PerObject[i] = row
	}
	return l
}

// Get returns the label of point j of object i.
func (l *Labels) Get(obj, pt int) uint8 { return l.PerObject[obj][pt] }

// ClearBit clears the given label bit of point j of object i.
func (l *Labels) ClearBit(obj, pt int, bit uint8) { l.PerObject[obj][pt] &^= bit }

// SizeBytes returns the label payload size (the paper's O(nm) space).
func (l *Labels) SizeBytes() int {
	n := 0
	for _, row := range l.PerObject {
		n += len(row)
	}
	return n
}

// Counts returns, per label bit, how many points have it cleared.
func (l *Labels) Counts() (mapped, upper, verify int) {
	for _, row := range l.PerObject {
		for _, v := range row {
			if v&BitMapped == 0 {
				mapped++
			}
			if v&BitUpper == 0 {
				upper++
			}
			if v&BitVerify == 0 {
				verify++
			}
		}
	}
	return
}

// Store keeps label sets keyed by ⌈r⌉. With a Dir configured, Put
// writes each label set to disk and Get reads it back, so labels
// survive beyond memory as §III-D prescribes; without a Dir the store
// is purely in-memory.
//
// Disk round-trips go through internal/durable: label files are
// committed atomically inside a checksummed envelope, and a file that
// fails validation on read — torn write, bit flip, truncation — is
// quarantined (renamed *.corrupt) and reported as a miss. Labels are
// a cache of recyclable work, so "recompute" is always a safe answer;
// serving a corrupt label set would silently skip live points.
type Store struct {
	mu    sync.Mutex
	mem   map[int]*Labels
	dir   string
	dio   durable.IO
	cache bool // keep disk-backed label sets in memory too

	quarantined uint64 // corrupt files moved aside by Get
}

// NewStore returns an in-memory label store.
func NewStore() *Store {
	return &Store{mem: make(map[int]*Labels), cache: true}
}

// NewDiskStore returns a store that persists label sets under dir
// (created if needed). Label sets are still served from memory once
// loaded.
func NewDiskStore(dir string) (*Store, error) {
	return NewDiskStoreIO(dir, durable.IO{})
}

// NewDiskStoreIO is NewDiskStore with an explicit durability context,
// so crash tests can inject IO faults into label commits.
func NewDiskStoreIO(dir string, dio durable.IO) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("labelstore: %w", err)
	}
	return &Store{mem: make(map[int]*Labels), dir: dir, dio: dio, cache: true}, nil
}

func (s *Store) path(ceil int) string {
	return filepath.Join(s.dir, fmt.Sprintf("labels-%d.bin", ceil))
}

// Put stores the labels for the given ⌈r⌉, replacing any previous
// set. The in-memory copy is installed first: even when the durable
// commit fails (disk full, injected IO fault) this process keeps its
// warm labels, and the commit protocol guarantees the previous on-disk
// set survives intact.
func (s *Store) Put(ceil int, l *Labels) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[ceil] = l
	if s.dir == "" {
		return nil
	}
	if err := s.dio.CommitEnvelope(s.path(ceil), marshalLabels(l)); err != nil {
		return fmt.Errorf("labelstore: write: %w", err)
	}
	return nil
}

// Get returns the labels for the given ⌈r⌉, or (nil, false) when none
// exist. Disk-backed sets are loaded on first access. A file that
// fails validation — bad envelope, CRC mismatch, malformed payload —
// is quarantined as *.corrupt and reported as a miss, never an error:
// the caller recomputes and the next Put writes a fresh file.
func (s *Store) Get(ceil int) (*Labels, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.mem[ceil]; ok {
		return l, true
	}
	if s.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(s.path(ceil))
	if err != nil {
		return nil, false
	}
	payload := data
	if durable.IsEnveloped(data) {
		payload, err = durable.Open(data)
		if err != nil {
			s.quarantine(ceil)
			return nil, false
		}
	}
	// Legacy pre-envelope files skip the branch above and are decoded
	// raw; unmarshalLabels rejects anything structurally unsound.
	l, err := unmarshalLabels(payload)
	if err != nil {
		s.quarantine(ceil)
		return nil, false
	}
	if s.cache {
		s.mem[ceil] = l
	}
	return l, true
}

// quarantine moves a corrupt label file aside; called with mu held.
func (s *Store) quarantine(ceil int) {
	if err := s.dio.Quarantine(s.path(ceil)); err == nil {
		s.quarantined++
	}
}

// Quarantined returns how many corrupt label files this store has
// moved aside.
func (s *Store) Quarantined() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Has reports whether labels exist for the given ⌈r⌉ without loading
// them.
func (s *Store) Has(ceil int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mem[ceil]; ok {
		return true
	}
	if s.dir == "" {
		return false
	}
	_, err := os.Stat(s.path(ceil))
	return err == nil
}

// Drop removes the labels for the given ⌈r⌉ from memory and disk.
func (s *Store) Drop(ceil int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.mem, ceil)
	if s.dir != "" {
		os.Remove(s.path(ceil))
	}
}

const labelMagic = uint64(0x4d494f4c41424c31) // "MIOLABL1"

func marshalLabels(l *Labels) []byte {
	size := 16
	for _, row := range l.PerObject {
		size += 8 + len(row)
	}
	buf := make([]byte, 0, size)
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], labelMagic)
	buf = append(buf, u[:]...)
	binary.LittleEndian.PutUint64(u[:], uint64(len(l.PerObject)))
	buf = append(buf, u[:]...)
	for _, row := range l.PerObject {
		binary.LittleEndian.PutUint64(u[:], uint64(len(row)))
		buf = append(buf, u[:]...)
		buf = append(buf, row...)
	}
	return buf
}

// unmarshalLabels decodes a label payload defensively: every count is
// validated against the bytes actually present *before* it is
// converted to int or used to allocate, so garbage input — including
// counts with the top bit set, which would turn into negative ints
// and panic the old slice arithmetic — yields an error, never a panic
// or an allocation larger than the input itself.
func unmarshalLabels(data []byte) (*Labels, error) {
	if len(data) < 16 {
		return nil, errors.New("labelstore: truncated header")
	}
	if binary.LittleEndian.Uint64(data) != labelMagic {
		return nil, errors.New("labelstore: bad magic")
	}
	n64 := binary.LittleEndian.Uint64(data[8:])
	// Every row costs at least its 8-byte length header, so the input
	// size bounds the row count exactly; this also caps the PerObject
	// allocation at len(data)/8 entries.
	if n64 > uint64(len(data)-16)/8 {
		return nil, fmt.Errorf("labelstore: object count %d exceeds input", n64)
	}
	n := int(n64)
	pos := 16
	l := &Labels{PerObject: make([][]uint8, n)}
	for i := 0; i < n; i++ {
		if pos+8 > len(data) {
			return nil, errors.New("labelstore: truncated row header")
		}
		m64 := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		if m64 > uint64(len(data)-pos) {
			return nil, errors.New("labelstore: truncated row")
		}
		m := int(m64)
		l.PerObject[i] = append([]uint8(nil), data[pos:pos+m]...)
		pos += m
	}
	if pos != len(data) {
		return nil, errors.New("labelstore: trailing bytes")
	}
	return l, nil
}
