package labelstore

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLabelsBasics(t *testing.T) {
	l := NewLabels([]int{3, 0, 2})
	if got := l.Get(0, 0); got != Initial {
		t.Fatalf("initial label = %b", got)
	}
	l.ClearBit(0, 1, BitUpper)
	if l.Get(0, 1)&BitUpper != 0 {
		t.Fatal("ClearBit failed")
	}
	if l.Get(0, 1)&BitMapped == 0 || l.Get(0, 1)&BitVerify == 0 {
		t.Fatal("ClearBit touched other bits")
	}
	l.ClearBit(2, 0, BitMapped)
	l.ClearBit(2, 1, BitVerify)
	m, u, v := l.Counts()
	if m != 1 || u != 1 || v != 1 {
		t.Fatalf("counts = %d %d %d", m, u, v)
	}
	if l.SizeBytes() != 5 {
		t.Fatalf("size = %d", l.SizeBytes())
	}
}

func TestStoreInMemory(t *testing.T) {
	s := NewStore()
	if s.Has(4) {
		t.Fatal("empty store Has")
	}
	if _, ok := s.Get(4); ok {
		t.Fatal("empty store Get")
	}
	l := NewLabels([]int{2, 2})
	l.ClearBit(1, 0, BitVerify)
	if err := s.Put(4, l); err != nil {
		t.Fatal(err)
	}
	if !s.Has(4) {
		t.Fatal("Has after Put")
	}
	got, ok := s.Get(4)
	if !ok || got.Get(1, 0)&BitVerify != 0 {
		t.Fatal("Get mismatch")
	}
	s.Drop(4)
	if s.Has(4) {
		t.Fatal("Drop failed")
	}
}

func TestStoreDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLabels([]int{3, 1})
	l.ClearBit(0, 2, BitMapped)
	l.ClearBit(1, 0, BitUpper)
	if err := s.Put(7, l); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same dir must load from disk.
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(7) {
		t.Fatal("disk store lost labels")
	}
	got, ok := s2.Get(7)
	if !ok {
		t.Fatal("Get from disk failed")
	}
	if got.Get(0, 2)&BitMapped != 0 || got.Get(1, 0)&BitUpper != 0 {
		t.Fatal("disk round-trip lost bits")
	}
	if got.Get(0, 0) != Initial {
		t.Fatal("disk round-trip corrupted untouched label")
	}
	s2.Drop(7)
	if s2.Has(7) {
		t.Fatal("Drop on disk store failed")
	}
	if _, err := os.Stat(filepath.Join(dir, "labels-7.bin")); !os.IsNotExist(err) {
		t.Fatal("label file survived Drop")
	}
}

func TestUnmarshalLabelErrors(t *testing.T) {
	if _, err := unmarshalLabels(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := unmarshalLabels(make([]byte, 16)); err == nil {
		t.Error("bad magic accepted")
	}
	good := marshalLabels(NewLabels([]int{2}))
	if _, err := unmarshalLabels(good[:len(good)-1]); err == nil {
		t.Error("truncated accepted")
	}
	if _, err := unmarshalLabels(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if back, err := unmarshalLabels(good); err != nil || len(back.PerObject) != 1 {
		t.Errorf("good payload rejected: %v", err)
	}
}

func TestDiskStoreBadDir(t *testing.T) {
	// A file where the directory should be.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskStore(filepath.Join(f, "sub")); err == nil {
		t.Error("dir under file accepted")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				ceil := w%3 + 1
				s.Put(ceil, NewLabels([]int{4}))
				s.Get(ceil)
				s.Has(ceil)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
