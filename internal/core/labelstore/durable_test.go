package labelstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mio/internal/durable"
	"mio/internal/fault"
)

// TestGetQuarantinesCorruptFile is the satellite: a corrupt label
// file must become a miss plus a *.corrupt rename, never an error or
// — worse — a trusted load.
func TestGetQuarantinesCorruptFile(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bit-flip-payload", func(b []byte) []byte { b[len(b)-1] ^= 0x04; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"garbage", func(b []byte) []byte { return []byte("not a label file at all") }},
		{"trailing", func(b []byte) []byte { return append(b, 0xFF) }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			l := NewLabels([]int{4, 2})
			l.ClearBit(0, 1, BitVerify)
			if err := s.Put(9, l); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "labels-9.bin")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}
			// A fresh store over the same dir must miss, not err/panic.
			s2, err := NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := s2.Get(9); ok {
				t.Fatal("corrupt label file was served")
			}
			if s2.Quarantined() != 1 {
				t.Fatalf("quarantined = %d, want 1", s2.Quarantined())
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt file still present under original name")
			}
			if _, err := os.Stat(path + durable.CorruptSuffix); err != nil {
				t.Errorf("no *.corrupt file: %v", err)
			}
			// The slot is reusable: a new Put writes a fresh valid file.
			if err := s2.Put(9, l); err != nil {
				t.Fatal(err)
			}
			s3, _ := NewDiskStore(dir)
			if got, ok := s3.Get(9); !ok || got.Get(0, 1)&BitVerify != 0 {
				t.Fatal("slot not reusable after quarantine")
			}
		})
	}
}

// TestLegacyLabelFileStillLoads: files written by the pre-envelope
// store (raw marshalLabels bytes) keep loading.
func TestLegacyLabelFileStillLoads(t *testing.T) {
	dir := t.TempDir()
	l := NewLabels([]int{3})
	l.ClearBit(0, 2, BitMapped)
	if err := os.WriteFile(filepath.Join(dir, "labels-4.bin"), marshalLabels(l), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(4)
	if !ok || got.Get(0, 2)&BitMapped != 0 {
		t.Fatal("legacy label file did not load")
	}
}

// TestPutCrashKeepsPreviousLabelFile: an injected crash during the
// label commit leaves the previous on-disk set intact and the new set
// warm in memory.
func TestPutCrashKeepsPreviousLabelFile(t *testing.T) {
	dir := t.TempDir()
	reg := fault.New(1)
	s, err := NewDiskStoreIO(dir, durable.IO{Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	v1 := NewLabels([]int{2})
	if err := s.Put(3, v1); err != nil {
		t.Fatal(err)
	}
	reg.Arm(fault.Rule{Point: fault.PointIOSync, Kind: fault.KindCrash, P: 1})
	v2 := NewLabels([]int{2})
	v2.ClearBit(0, 0, BitUpper)
	if err := s.Put(3, v2); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("injected Put returned %v", err)
	}
	// In-memory: warm with v2.
	if got, ok := s.Get(3); !ok || got.Get(0, 0)&BitUpper != 0 {
		t.Fatal("failed Put lost the in-memory labels")
	}
	// On disk: still v1, valid.
	reg.Clear(fault.PointIOSync)
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(3); !ok || got.Get(0, 0) != Initial {
		t.Fatal("crash during Put damaged the previous on-disk set")
	}
}

// TestUnmarshalLabelsHostileCounts pins the hardening: counts with
// the top bit set (negative as int) or absurdly large must error
// without panicking or allocating beyond the input.
func TestUnmarshalLabelsHostileCounts(t *testing.T) {
	mk := func(n, m uint64, body int) []byte {
		var buf bytes.Buffer
		var u [8]byte
		binary.LittleEndian.PutUint64(u[:], labelMagic)
		buf.Write(u[:])
		binary.LittleEndian.PutUint64(u[:], n)
		buf.Write(u[:])
		if m != 0 || body != 0 {
			binary.LittleEndian.PutUint64(u[:], m)
			buf.Write(u[:])
			buf.Write(make([]byte, body))
		}
		return buf.Bytes()
	}
	hostile := [][]byte{
		mk(1<<63, 0, 0), // negative row count as int
		mk(1<<40, 0, 0), // huge row count, tiny input
		mk(1, 1<<63, 2), // negative point count as int
		mk(1, 1<<40, 2), // huge point count
		mk(2, 2, 2),     // second row header missing
	}
	for i, data := range hostile {
		if _, err := unmarshalLabels(data); err == nil {
			t.Errorf("hostile input %d accepted", i)
		}
	}
}

// FuzzUnmarshalLabels: arbitrary and bit-flipped inputs never panic,
// and valid marshals always round-trip.
func FuzzUnmarshalLabels(f *testing.F) {
	f.Add([]byte{}, uint8(1), uint8(0))
	f.Add(marshalLabels(NewLabels([]int{3, 0, 2})), uint8(2), uint8(3))
	f.Add(marshalLabels(NewLabels(nil)), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, rows uint8, flip uint8) {
		// Arbitrary input must not panic; errors are fine.
		l, err := unmarshalLabels(data)
		if err == nil {
			// Whatever decoded must re-marshal to the identical bytes
			// (the format has exactly one encoding per label set).
			if !bytes.Equal(marshalLabels(l), data) {
				t.Fatal("decode/encode not idempotent")
			}
		}
		// A valid marshal round-trips...
		counts := make([]int, rows%8)
		for i := range counts {
			counts[i] = int(flip) % 16
		}
		good := marshalLabels(NewLabels(counts))
		if _, err := unmarshalLabels(good); err != nil {
			t.Fatalf("valid marshal rejected: %v", err)
		}
		// ...and any single bit flip either errors or, at worst, stays
		// structurally sound (never panics). CRC protection lives one
		// layer up in the envelope.
		if len(good) > 0 {
			mut := append([]byte(nil), good...)
			mut[int(flip)%len(mut)] ^= 1 << (rows % 8)
			_, _ = unmarshalLabels(mut)
		}
	})
}
