package core

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mio/internal/bitmap"
	"mio/internal/core/labelstore"
	"mio/internal/fault"
	"mio/internal/grid"
)

// pointGroup is P_{i,K}: the points of one object sharing a large-grid
// key. Grouping is established during grid mapping (for free, as the
// paper notes in §IV) and drives both the per-object key deduplication
// of upper-bounding and the cost-based parallel partitioning.
type pointGroup struct {
	key grid.Key
	pts []int32 // indices into the object's point slice
}

// bigrid is the BIGrid built online for one query, together with the
// per-object access structures of Algorithm 3.
type bigrid struct {
	small *grid.SmallGrid
	large *grid.LargeGrid
	// keyLists[i] is o_i.L: the small-grid keys of cells that o_i
	// shares with at least one other object.
	keyLists [][]grid.Key
	// groups[i] are o_i's large-grid point groups P_{i,K}, in first-
	// occurrence order.
	groups [][]pointGroup
}

// sizeBytes estimates the BIGrid memory footprint.
func (b *bigrid) sizeBytes() int {
	total := b.small.SizeBytes() + b.large.SizeBytes()
	for _, kl := range b.keyLists {
		total += 24 + len(kl)*12
	}
	for _, gs := range b.groups {
		total += 24
		for _, g := range gs {
			total += 12 + 24 + len(g.pts)*4
		}
	}
	return total
}

// query carries the state of one MIO query through the four phases.
type query struct {
	e *Engine
	r float64
	k int
	n int

	r2 float64 // r²
	// freezeMin caches Options.freezeMin(): the cell size at which
	// verification freezes a probed cell into SoA form (0 = never).
	freezeMin int

	idx *bigrid

	// Labels loaded for ⌈r⌉ (nil when none) and labels being collected
	// (nil when not collecting).
	labels    *labelstore.Labels
	newLabels *labelstore.Labels

	// Lower-bound bitsets kept for the label-aware verification
	// (§III-D: "we maintain b(o_i) to utilize this in the verification
	// step"). Only populated on label-aware runs.
	lbBits []*bitmap.Compressed

	tauLow []int32
	tauUpp []int32

	// restrict, when non-nil, limits which objects may be *answers*:
	// kthHighest, assembleCandidates and degraded() only consider
	// objects with restrict[i] set. Bounds are still computed over every
	// object — a disallowed object contributes to its neighbours'
	// scores, it just cannot be reported. The sharded path (Bound)
	// restricts answers to a shard's primary objects so border replicas
	// are never double-reported.
	restrict []bool

	// Per-worker scratch bitsets for parallel verification, allocated
	// lazily on the first verified candidate. vShare[w] is worker w's
	// object share {j : j mod t == w}, constant for the whole query;
	// vPts is the reusable label-filtered point-sequence buffer.
	vBOi   []*bitmap.Scratch
	vMask  []*bitmap.Scratch
	vShare []*bitmap.Scratch
	vPts   []int32

	// ctx carries the caller's cancellation; nil means background.
	ctx context.Context
	// cancelCheck, when non-nil, is consulted by cancelled() before
	// ctx. Group runs (batch.go) install it so a shared pass is
	// abandoned once every member that needs it has detached, without
	// tying the pass to any single member's context.
	cancelCheck func() bool

	// adjBase, when non-nil, switches verification's AdjComputed
	// accounting to group mode (see noteAdj): it holds the cells whose
	// b^adj already existed when the group's shared upper-bounding pass
	// finished. adjSeen (guarded by adjMu: parallel verification
	// workers race on it) dedupes the cells this query has counted.
	adjBase map[grid.Key]struct{}
	adjMu   sync.Mutex
	adjSeen map[grid.Key]struct{}

	// Degraded-answer bookkeeping (RunTopKDegradedContext). degradeOK
	// opts in; the completion flags record which phases ran to the end
	// (an early cancellation break leaves them false, so partial bound
	// vectors are never certified); trunc captures a verification
	// candidate whose exact-score loop was cut short mid-object.
	degradeOK bool
	gmBroke   atomic.Bool // written by parallel grid-mapping workers
	lbDone    bool
	ubDone    bool
	trunc     *truncCand

	stats PhaseStats
}

// truncCand is a candidate whose verification was interrupted: the
// partially accumulated bitset certifies lb, upper-bounding certifies
// ub.
type truncCand struct {
	obj    int
	lb, ub int
}

func newQuery(e *Engine, r float64, k int) *query {
	return &query{
		e:         e,
		r:         r,
		k:         k,
		n:         e.ds.N(),
		r2:        r * r,
		freezeMin: e.opts.freezeMin(),
	}
}

// ceilR returns the large-grid identity ⌈r⌉ used as the label key.
func (q *query) ceilR() int { return int(math.Ceil(q.r)) }

// cancelled reports whether the caller has abandoned the query. Hot
// loops call this every few hundred objects, not per item.
func (q *query) cancelled() bool {
	if q.cancelCheck != nil && q.cancelCheck() {
		return true
	}
	if q.ctx == nil {
		return false
	}
	select {
	case <-q.ctx.Done():
		return true
	default:
		return false
	}
}

// fire triggers the named fault-injection point when a registry is
// configured; a nil registry is one pointer check.
func (q *query) fire(point string) error {
	return q.e.opts.Faults.Fire(point)
}

// run executes the framework of Algorithm 2.
func (q *query) run() (*Result, error) {
	// Label input (§III-D): O(1) existence check, then the O(nm/B)
	// load, both timed as the paper's "Label-Input" row.
	if err := q.fire(fault.PointLabelInput); err != nil {
		return nil, err
	}
	if store := q.e.opts.Labels; store != nil {
		t0 := time.Now()
		if l, ok := store.Get(q.ceilR()); ok {
			q.labels = l
			q.stats.UsedLabels = true
			q.stats.LabelBytes = l.SizeBytes()
		} else if !q.e.opts.DisableCollect {
			counts := make([]int, q.n)
			for i := range q.e.ds.Objects {
				counts[i] = len(q.e.ds.Objects[i].Pts)
			}
			q.newLabels = labelstore.NewLabels(counts)
		}
		q.stats.LabelInput = time.Since(t0)
	}

	if err := q.fire(fault.PointGridMapping); err != nil {
		return nil, err
	}
	t0 := time.Now()
	q.gridMapping()
	q.stats.GridMapping = time.Since(t0)
	q.stats.SmallCells = q.idx.small.Len()
	q.stats.LargeCells = q.idx.large.Len()
	if q.cancelled() {
		// No bound vector exists yet, so no degradation is possible.
		return nil, q.ctx.Err()
	}

	if err := q.fire(fault.PointLowerBounding); err != nil {
		return nil, err
	}
	t0 = time.Now()
	threshold := q.lowerBounding()
	q.stats.LowerBounding = time.Since(t0)
	if q.cancelled() {
		return q.degraded(nil)
	}

	if err := q.fire(fault.PointUpperBounding); err != nil {
		return nil, err
	}
	t0 = time.Now()
	cand := q.upperBounding(threshold)
	q.stats.UpperBounding = time.Since(t0)
	q.stats.Candidates = len(cand)
	if q.cancelled() {
		return q.degraded(nil)
	}

	if err := q.fire(fault.PointVerification); err != nil {
		return nil, err
	}
	t0 = time.Now()
	topk := q.verification(cand)
	q.stats.Verification = time.Since(t0)
	if q.cancelled() {
		return q.degraded(topk)
	}

	q.finishGridStats()

	// Post-processing: publish collected labels (§III-D "labels are
	// outputted in post-processing"). Labels are a reusable cache, not
	// part of the answer: a failed persist (disk full, injected IO
	// fault) is reported in the stats but must not fail an exact
	// query. The store keeps the set in memory either way, so this
	// process stays warm; only a restart loses the work.
	if q.newLabels != nil {
		if err := q.e.opts.Labels.Put(q.ceilR(), q.newLabels); err != nil {
			q.stats.LabelPersistFailed = true
		}
	}

	res := &Result{TopK: topk, Stats: q.stats}
	if len(topk) > 0 {
		res.Best = topk[0]
	}
	return res, nil
}

// finishGridStats records the index-footprint numbers; split out so
// the degraded path can report them too once the grid exists.
func (q *query) finishGridStats() {
	q.stats.IndexBytes = q.idx.sizeBytes()
	q.stats.SmallGridBytes = q.idx.small.SizeBytes()
	q.stats.SmallGridUncompressedBytes = q.idx.small.UncompressedSizeBytes(q.n)
	q.stats.LargeGridBytes = q.idx.large.SizeBytes()
}

// skipPoint reports whether loaded labels prune point pt of object obj
// entirely (label 0**, Lemma 3).
func (q *query) skipPoint(obj, pt int) bool {
	return q.labels != nil && q.labels.Get(obj, pt)&labelstore.BitMapped == 0
}

// gridMapping implements GRID-MAPPING(O, r) (Algorithm 3) and its
// WITH-LABEL variant, dispatching to the parallel builder when
// configured.
func (q *query) gridMapping() {
	if q.e.opts.workers() > 1 {
		q.parallelGridMapping()
	} else {
		q.idx = q.buildRange(0, q.n)
	}
	// The large grid is NOT frozen here: verification freezes probed
	// cells lazily (probeCell), so the one-time SoA flattening cost is
	// paid only for the small fraction of cells a query actually
	// touches, and lands in the verification phase it benefits.
}

// buildRange builds a BIGrid over objects [lo, hi). With lo > 0 the
// result is a partial grid used by the parallel builder; partial grids
// have nil keyLists (key lists are derived after merging).
func (q *query) buildRange(lo, hi int) *bigrid {
	dims := q.e.opts.dims()
	b := &bigrid{
		small:  grid.NewSmallGrid(grid.SmallWidth(q.r, dims)),
		large:  grid.NewLargeGrid(grid.LargeWidth(q.r), q.n),
		groups: make([][]pointGroup, q.n),
	}
	full := lo == 0 && hi == q.n
	if full {
		b.keyLists = make([][]grid.Key, q.n)
	}
	for i := lo; i < hi; i++ {
		// Grid mapping is the first long phase; poll so a query abandoned
		// during index construction returns promptly. The truncated grid
		// is discarded by run()'s post-phase ctx check; gmBroke records
		// the truncation so a degraded answer is never certified from a
		// partial grid.
		if i&127 == 127 && q.cancelled() {
			q.gmBroke.Store(true)
			break
		}
		obj := &q.e.ds.Objects[i]
		for j, p := range obj.Pts {
			if q.skipPoint(i, j) {
				continue
			}
			// Small-grid side (Algorithm 3 lines 3-13).
			if full {
				k, before, after, cell := b.small.Add(i, p)
				if after == 2 && before == 1 {
					first := cell.FirstObject()
					b.keyLists[first] = append(b.keyLists[first], k)
					b.keyLists[i] = append(b.keyLists[i], k)
				} else if after > 2 && after != before {
					b.keyLists[i] = append(b.keyLists[i], k)
				}
			} else {
				b.small.Add(i, p)
			}
			// Large-grid side (lines 14-21).
			b.large.Add(i, j, p)
		}
	}
	deriveGroups(b.large, b.groups)
	return b
}

// deriveGroups derives the point groups P_{i,K} from the inverted
// lists — each posting is exactly one group, so the grouping the
// parallel phases need comes for free from grid building (§IV). The
// group's point slice aliases the posting's index slice; both are
// read-only after construction. Cells are visited in sorted key order,
// NOT map order: group order drives the parallel phases' greedy
// partitions and the round-robin point assignment of parallel
// verification, so map-order iteration would make work counters
// (distComps in particular) differ run to run for identical queries —
// and differ between the solo and group (batch.go) paths, which both
// call this.
func deriveGroups(large *grid.LargeGrid, groups [][]pointGroup) {
	keys := make([]grid.Key, 0, large.Len())
	large.ForEach(func(k grid.Key, _ *grid.LargeCell) { keys = append(keys, k) })
	sort.Slice(keys, func(a, b int) bool { return keys[a].Less(keys[b]) })
	for _, k := range keys {
		c := large.Cell(k)
		for pi := range c.Postings {
			post := &c.Postings[pi]
			groups[post.Obj] = append(groups[post.Obj], pointGroup{key: k, pts: post.Idx})
		}
	}
}

// deriveKeyLists derives the per-object key lists from a merged small
// grid: o_i.L = {K : i ∈ b(c_K), |b(c_K)| ≥ 2}, the invariant
// Algorithm 3 maintains incrementally on full builds. List order
// follows map iteration and so differs run to run, but nothing
// observable depends on it: the lists feed set unions, and the
// parallel partitions they weight only move work between cores.
func deriveKeyLists(small *grid.SmallGrid, n int) [][]grid.Key {
	keyLists := make([][]grid.Key, n)
	small.ForEach(func(k grid.Key, c *grid.SmallCell) {
		if c.B.Cardinality() < 2 {
			return
		}
		c.B.ForEach(func(obj int) bool {
			keyLists[obj] = append(keyLists[obj], k)
			return true
		})
	})
	return keyLists
}
