package core

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"mio/internal/bitmap"
	"mio/internal/data"
	"mio/internal/geom"
	"mio/internal/grid"
)

// Verification-phase benchmarks. Every benchmark here honours
//
//	MIO_FREEZE=off
//
// which disables the post-mapping SoA freeze, so the same benchmark
// names can be compared across the two layouts with cmd/benchdiff:
//
//	MIO_FREEZE=off go test -bench 'ProbeCell|EngineQuery' -run '^$' ./internal/core > old.txt
//	go test -bench 'ProbeCell|EngineQuery' -run '^$' ./internal/core > new.txt
//	go run ./cmd/benchdiff old.txt new.txt

// benchOptions returns the engine options for verification benchmarks,
// applying the MIO_FREEZE=off toggle.
func benchOptions(workers int) Options {
	return Options{Workers: workers, DisableFreeze: os.Getenv("MIO_FREEZE") == "off"}
}

var benchStandins = struct {
	once sync.Once
	sets map[string]*data.Dataset
}{}

// standin returns the named scaled-down stand-in dataset (Bird, Neuron,
// ...), generated once per process at scale 0.25.
func standin(b *testing.B, name string) *data.Dataset {
	b.Helper()
	benchStandins.once.Do(func() { benchStandins.sets = data.Standard(0.25) })
	ds := benchStandins.sets[name]
	if ds == nil {
		b.Fatalf("unknown stand-in %q", name)
	}
	return ds
}

// BenchmarkProbeCellDenseMask is the regression benchmark for the
// inner-loop costs probeCell has shed: the O(n/64)-per-call mask
// cardinality scan (now an O(1) counter maintained by bitmap.Scratch)
// and the pointer-chased AoS point walk (now a flat SoA block behind
// per-posting AABBs). It probes the biggest cell — where verification
// time concentrates — with a dense mask and a probe point one cell
// over, so most postings need a full scan or an AABB rejection rather
// than an early first-point hit.
func BenchmarkProbeCellDenseMask(b *testing.B) {
	eng, err := NewEngine(standin(b, "Neuron"), benchOptions(1))
	if err != nil {
		b.Fatal(err)
	}
	q := newQuery(eng, 8, 1)
	q.gridMapping()

	// The cell with the most points gives the worst-case posting scan.
	var bestKey grid.Key
	bestPts := -1
	q.idx.large.ForEach(func(k grid.Key, c *grid.LargeCell) {
		if c.NumPoints() > bestPts {
			bestPts, bestKey = c.NumPoints(), k
		}
	})
	cell := q.idx.large.Cell(bestKey)
	adj, _ := q.idx.large.ComputeAdj(bestKey)
	// Probe from 1.5 cell widths past the cell's centre: every point of
	// the cell is between 1.0 and 2.5 widths away, so with r = width the
	// probes are misses — near postings scan to the end, far postings
	// are AABB-rejected. That is the expensive regime probeCell is
	// optimised for; first-point hits are cheap under any layout.
	w := q.idx.large.Width()
	p := geom.Pt((float64(bestKey.X)+2.0)*w, (float64(bestKey.Y)+0.5)*w, (float64(bestKey.Z)+0.5)*w)

	bOi := bitmap.NewScratch(q.n)
	mask := bitmap.NewScratch(q.n)
	ctr := ctrSet{}
	// Warm-up probe: triggers the lazy freeze outside the timed loop.
	// That mirrors steady state — a hot cell is probed many times per
	// query, so the one-time flattening is not what this benchmark
	// measures (BenchmarkEngineQuery* charges it end to end).
	bOi.Set(0)
	mask.AndNotFromCompressed(adj, bOi)
	q.probeCell(cell, p, bOi, mask, &ctr)
	ctr = ctrSet{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bOi.Reset()
		bOi.Set(0)
		mask.AndNotFromCompressed(adj, bOi)
		q.probeCell(cell, p, bOi, mask, &ctr)
	}
	b.ReportMetric(float64(ctr.distComps)/float64(b.N), "distComps/op")
}

// benchmarkEngineQuery times the full pipeline (online grid build +
// bounding + verification) on one stand-in, the end-to-end number the
// paper's Fig. 5 reports.
func benchmarkEngineQuery(b *testing.B, dataset string, r float64) {
	eng, err := NewEngine(standin(b, dataset), benchOptions(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var distComps int
	for i := 0; i < b.N; i++ {
		res, err := eng.RunTopK(r, 1)
		if err != nil {
			b.Fatal(err)
		}
		distComps = res.Stats.DistanceComps
	}
	b.ReportMetric(float64(distComps), "distComps/op")
}

func BenchmarkEngineQueryBird(b *testing.B) {
	for _, r := range []float64{15, 40} {
		b.Run(fmt.Sprintf("r=%g", r), func(b *testing.B) { benchmarkEngineQuery(b, "Bird", r) })
	}
}

func BenchmarkEngineQueryNeuron(b *testing.B) {
	for _, r := range []float64{4, 8} {
		b.Run(fmt.Sprintf("r=%g", r), func(b *testing.B) { benchmarkEngineQuery(b, "Neuron", r) })
	}
}
