package core

// degraded assembles a partial answer after the context expired
// mid-pipeline (RunTopKDegradedContext). The contract: the returned
// Best object's true score lies inside Interval, and Best.Score equals
// Interval.LB, the best certified lower bound available.
//
// Soundness rests on which phases completed:
//
//   - A complete lower-bounding pass gives τ^low(o_i) ≤ τ(o_i) for
//     every object (Lemma 1), so the argmax of tauLow is a defensible
//     "most promising" candidate and its tauLow a certified LB.
//   - A complete upper-bounding pass gives τ^upp(o_i) ≥ τ(o_i)
//     (Lemma 2), tightening the trivial UB of n−1.
//   - A truncated verification contributes two refinements: a partial
//     exact score (valid LB, the bOi accumulation is monotone) for the
//     object being verified, and — via top — fully exact scores for
//     the objects verified before the deadline.
//
// If lower bounding itself did not complete (or grid mapping was
// truncated, leaving bounds computed over a partial grid), no sound
// bound exists and the caller gets the plain context error.
func (q *query) degraded(top []Scored) (*Result, error) {
	if !q.degradeOK || q.gmBroke.Load() || !q.lbDone {
		return nil, q.ctx.Err()
	}

	best := -1
	for i := 0; i < q.n; i++ {
		if q.allowed(i) && (best < 0 || q.tauLow[i] > q.tauLow[best]) {
			best = i
		}
	}
	if best < 0 {
		// A restriction that allows nobody cannot certify an answer.
		return nil, q.ctx.Err()
	}
	lb := int(q.tauLow[best])
	ub := q.n - 1
	if q.ubDone {
		ub = int(q.tauUpp[best])
	}

	// A candidate whose verification was cut short carries a partial
	// exact score: prefer it when it certifies at least as much.
	if t := q.trunc; t != nil && t.lb >= lb {
		best, lb, ub = t.obj, t.lb, t.ub
	}
	// Fully verified candidates have exact scores. Verification runs
	// best-first, so if any verified score ties or beats the certified
	// LB, it is a strictly better answer with a point interval.
	if len(top) > 0 && top[0].Score >= lb {
		best, lb, ub = top[0].Obj, top[0].Score, top[0].Score
	}
	if ub < lb {
		// tauUpp can undercut a trunc/exact LB for the *same* object
		// only by a bug, but different sources may disagree across
		// objects; clamp so the interval stays well-formed.
		ub = lb
	}

	q.finishGridStats()
	res := &Result{
		Best:     Scored{Obj: best, Score: lb},
		TopK:     []Scored{{Obj: best, Score: lb}},
		Stats:    q.stats,
		Degraded: true,
		Interval: &Interval{LB: lb, UB: ub},
	}
	return res, nil
}
