package core

import (
	"mio/internal/bitmap"
	"mio/internal/core/labelstore"
	"mio/internal/geom"
	"mio/internal/grid"
)

// verification implements VERIFICATION(O_cand, r) (Algorithm 6) with
// the best-first early termination of Corollary 1, generalised to
// top-k, plus the WITH-LABEL variant of §III-D. cand must be sorted by
// descending upper bound.
func (q *query) verification(cand []candidate) []Scored {
	top := make([]Scored, 0, q.k)
	// kthScore returns the current k-th best exact score, or -1 while
	// fewer than k objects have been verified.
	kthScore := func() int {
		if len(top) < q.k {
			return -1
		}
		return top[q.k-1].Score
	}

	bOi := bitmap.NewScratch(q.n)
	mask := bitmap.NewScratch(q.n)
	ctr := ctrSet{}
	var neigh [27]grid.Key

	for _, c := range cand {
		if int(c.tauUpp) < kthScore() {
			// Corollary 1: no remaining candidate can enter the top-k.
			// The cut is strict so candidates tying the k-th score are
			// still verified: with the canonical tie-break of insertTopK
			// the final list is then a pure function of (dataset, r, k),
			// independent of verification order — which is what lets a
			// sharded merge (internal/shard) reproduce the single-engine
			// answer bitwise.
			break
		}
		if q.cancelled() {
			break
		}
		i := int(c.obj)
		var tau int
		if q.e.opts.workers() > 1 {
			tau = q.parallelExactScore(i)
		} else {
			tau = q.exactScore(i, bOi, mask, neigh[:0], &ctr)
		}
		if q.cancelled() {
			// The exact-score loop may have been cut short, so tau is
			// only a lower bound (bOi accumulates monotonically); it must
			// not enter the top-k as an exact score. Keep it for the
			// degraded answer instead, bracketed by the candidate's upper
			// bound.
			lb := tau
			if int(q.tauLow[i]) > lb {
				lb = int(q.tauLow[i])
			}
			q.trunc = &truncCand{obj: i, lb: lb, ub: int(c.tauUpp)}
			break
		}
		q.stats.Verified++
		top = insertTopK(top, Scored{Obj: i, Score: tau}, q.k)
	}
	q.addCounters([]ctrSet{ctr})
	return top
}

// exactScore computes τ(o_i) with the BIGrid (Algorithm 6 lines 6-19).
func (q *query) exactScore(i int, bOi, mask *bitmap.Scratch, neigh []grid.Key, ctr *ctrSet) int {
	bOi.Reset()
	bOi.Set(i)
	if q.lbBits != nil && q.lbBits[i] != nil {
		// WITH-LABEL: start from the lower-bounding bitset — those
		// objects are certain interactions, so candidate masks empty
		// out earlier (§III-D).
		bOi.OrCompressed(q.lbBits[i])
	}
	obj := &q.e.ds.Objects[i]
	st := scoreState{}
	for j, p := range obj.Pts {
		// Point-heavy objects (Neuron has thousands of points each) make
		// a single exact score long enough that the per-candidate check
		// in verification() is not prompt; poll inside the loop too. A
		// cancelled run returns a truncated score, which is still a valid
		// lower bound (bOi only grows); verification() records it as such
		// and never reports it as exact.
		if j&255 == 255 && q.cancelled() {
			break
		}
		if q.labels != nil {
			l := q.labels.Get(i, j)
			if l&labelstore.BitMapped == 0 || l&labelstore.BitVerify == 0 {
				continue // label 0** or 1*0: point cannot add interactions
			}
		}
		q.scorePoint(i, j, p, bOi, mask, neigh, ctr, &st)
	}
	return bOi.Cardinality() - 1
}

// scoreState carries verification state across the points of one
// object: while consecutive points share a large-grid cell, the
// candidate mask b = b^adj(c) − b(o_i) stays exact (probing clears
// found bits from both mask and adds them to b(o_i)), so it need not be
// rebuilt.
type scoreState struct {
	lastKey   grid.Key
	maskValid bool
	// share, when non-nil, restricts the candidate mask to the objects
	// this worker owns (object-partitioned parallel verification,
	// parallelExactScore). The restriction composes with the mask-reuse
	// invariant: probing only ever clears bits, so a share-restricted
	// mask stays exact across a same-cell run of points.
	share *bitmap.Scratch
	// emptyAt, when non-nil, diverts the Labeling-3 empty-mask signal:
	// instead of clearing the label bit directly (which would be wrong —
	// a worker's share-mask can empty while other workers still have
	// survivors), bit j records that *this worker's share* of point j's
	// mask was empty. The workers' vectors are ANDed after the merge;
	// the conjunction is exactly the serial full-mask-empty condition.
	emptyAt []uint64
}

// scorePoint processes one point of o_i: builds the candidate mask
// b = b^adj(c_K) − b(o_i), then probes posting lists of the cell and
// its neighbours only for objects whose mask bit survives.
func (q *query) scorePoint(i, j int, p geom.Point, bOi, mask *bitmap.Scratch, neigh []grid.Key, ctr *ctrSet, st *scoreState) {
	k := q.idx.large.KeyFor(p)
	if !st.maskValid || k != st.lastKey {
		cell := q.idx.large.Cell(k)
		if cell == nil {
			st.maskValid = false
			return
		}
		adj := cell.Adj()
		if adj == nil {
			// WITH-LABEL runs may reach cells whose b^adj was never
			// needed during (label-filtered) upper-bounding; compute it
			// now (§III-D, VERIFICATION-WITH-LABEL).
			var fresh bool
			adj, fresh = q.idx.large.ComputeAdj(k)
			if q.noteAdj(k, fresh) {
				ctr.adjComputed++
			}
		} else if q.adjBase != nil && q.noteAdj(k, false) {
			// On a shared grid another plan may have materialised this
			// cell's b^adj already; the replay accounting still charges
			// it to this query if a private grid would have.
			ctr.adjComputed++
		}
		mask.AndNotFromCompressed(adj, bOi)
		if st.share != nil {
			mask.AndScratch(st.share)
		}
		st.lastKey, st.maskValid = k, true
	}
	if mask.Cardinality() == 0 {
		if st.emptyAt != nil {
			st.emptyAt[j>>6] |= 1 << uint(j&63)
		} else if q.newLabels != nil {
			// Labeling-3 (Observation 3): this point's mask is empty;
			// future verifications with the same ⌈r⌉ can skip it.
			q.newLabels.ClearBit(i, j, labelstore.BitVerify)
		}
		return
	}
	for _, nk := range k.NeighborsAndSelf(neigh[:0]) {
		nc := q.idx.large.Cell(nk)
		if nc == nil {
			continue
		}
		q.probeCell(nc, p, bOi, mask, ctr)
		if mask.Cardinality() == 0 {
			return
		}
	}
}

// noteAdj decides whether a verification-phase visit to cell k's
// adjacency bitset counts toward this query's AdjComputed. A solo
// query owns its grid, so grid freshness is the answer. Group runs
// (batch.go) share one large grid across member plans: freshness would
// credit whichever plan reached the cell first, so accounting switches
// to a per-query replay — every visit to a cell outside adjBase (the
// set whose b^adj existed when the shared upper-bounding pass
// finished) counts exactly once per query, which is what a private
// grid would have charged.
func (q *query) noteAdj(k grid.Key, fresh bool) bool {
	if q.adjBase == nil {
		return fresh
	}
	if _, had := q.adjBase[k]; had {
		return false
	}
	q.adjMu.Lock()
	defer q.adjMu.Unlock()
	if _, dup := q.adjSeen[k]; dup {
		return false
	}
	if q.adjSeen == nil {
		q.adjSeen = make(map[grid.Key]struct{})
	}
	q.adjSeen[k] = struct{}{}
	return true
}

// probeCell runs the distance computations of Algorithm 6 lines 13-17:
// for every object still in the mask, scan its posting list in the cell
// until one point within r is found. The posting-list/mask intersection
// runs in whichever direction is cheaper: over mask bits (binary search
// per posting lookup) when the mask is small, over the cell's posting
// lists (O(1) mask test each) when the cell is small.
//
// Cells holding at least freezeMin points are frozen into SoA form on
// first probe (grid.LargeCell.EnsureFrozen) and probed with the geom
// batch kernels, pruning whole postings via their AABB. Small cells
// keep the AoS walk: verification time concentrates in the few big
// cells, and flattening a handful of points costs more than it saves.
func (q *query) probeCell(c *grid.LargeCell, p geom.Point, bOi, mask *bitmap.Scratch, ctr *ctrSet) {
	if q.freezeMin > 0 && c.NumPoints() >= q.freezeMin {
		soa := c.EnsureFrozen()
		if len(c.Postings) <= mask.Cardinality() {
			for pi := range c.Postings {
				j := int(c.Postings[pi].Obj)
				if mask.Test(j) {
					q.probePosting(soa, pi, j, p, bOi, mask, ctr)
				}
			}
			return
		}
		mask.ForEach(func(j int) bool {
			if pi := c.PostingIndex(j); pi >= 0 {
				q.probePosting(soa, pi, j, p, bOi, mask, ctr)
			}
			return true
		})
		return
	}
	if len(c.Postings) <= mask.Cardinality() {
		for pi := range c.Postings {
			post := &c.Postings[pi]
			j := int(post.Obj)
			if !mask.Test(j) {
				continue
			}
			for _, pp := range post.Pts {
				ctr.distComps++
				//lint:ignore dist2 AoS fallback for unfrozen grids; the frozen path uses geom.FirstWithin2
				if geom.Dist2(p, pp) <= q.r2 {
					bOi.Set(j)
					mask.Clear(j)
					break
				}
			}
		}
		return
	}
	mask.ForEach(func(j int) bool {
		pts := c.Posting(j)
		if pts == nil {
			return true
		}
		for _, pp := range pts {
			ctr.distComps++
			//lint:ignore dist2 AoS fallback for unfrozen grids; the frozen path uses geom.FirstWithin2
			if geom.Dist2(p, pp) <= q.r2 {
				bOi.Set(j)
				mask.Clear(j)
				break
			}
		}
		return true
	})
}

// aabbMinPoints is the posting length below which probePosting skips
// the AABB test: one box distance costs about three point distances,
// so rejecting a two-point posting in bulk is no cheaper than scanning
// it.
const aabbMinPoints = 8

// probePosting resolves one posting of a frozen cell against p: the
// per-posting AABB first (one comparison rejects the whole posting),
// then the 4-wide FirstWithin2 kernel over the contiguous coordinate
// block. distComps accounting is layout-independent: a posting counts
// the pairs the scalar break-on-first-hit loop would have touched
// (idx+1 on a hit, the full posting on a miss), and an AABB rejection
// counts the full posting it resolved in bulk (the box can never
// reject a posting containing a hit, since box distance is a lower
// bound on point distance) — so identical queries report identical
// distComps whatever mix of layouts and pruning paths resolved them.
func (q *query) probePosting(soa *grid.PostingBlock, pi, j int, p geom.Point, bOi, mask *bitmap.Scratch, ctr *ctrSet) {
	if n := soa.Len(pi); n >= aabbMinPoints && soa.Boxes[pi].Dist2To(p) > q.r2 {
		ctr.distComps += n
		return
	}
	xs, ys, zs := soa.Points(pi)
	if idx := geom.FirstWithin2(p.X, p.Y, p.Z, xs, ys, zs, q.r2); idx >= 0 {
		ctr.distComps += idx + 1
		bOi.Set(j)
		mask.Clear(j)
	} else {
		ctr.distComps += len(xs)
	}
}

// insertTopK inserts s into the canonically-sorted top list (score
// descending, object id ascending on ties), keeping at most k entries.
// The paper allows an arbitrary tie-break; the canonical order is
// chosen so the final top-k does not depend on verification order —
// any set of exact scores merges to the same list, which the sharded
// scatter–gather path (internal/shard) relies on for bitwise parity
// with the single-engine oracle.
func insertTopK(top []Scored, s Scored, k int) []Scored {
	pos := len(top)
	for pos > 0 && (top[pos-1].Score < s.Score ||
		(top[pos-1].Score == s.Score && top[pos-1].Obj > s.Obj)) {
		pos--
	}
	if pos >= k {
		return top
	}
	top = append(top, Scored{})
	copy(top[pos+1:], top[pos:])
	top[pos] = s
	if len(top) > k {
		top = top[:k]
	}
	return top
}
