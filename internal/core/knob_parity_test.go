package core

import (
	"reflect"
	"testing"

	"mio/internal/core/labelstore"
)

// TestKnobParity is the answer-invariance contract the auto-tuner
// (internal/tune) relies on: every tunable knob assignment must return
// the identical top-k AND the identical work counters. DistanceComps
// in particular must be bitwise equal — the CI bench-smoke gate fails
// on any increase, so a tuner that changed the count at some worker
// count could never be deployed. Candidates and Verified pin the
// bounding phases and the Corollary-1 termination point the same way.
func TestKnobParity(t *testing.T) {
	sets := testDatasets(t)
	for name, ds := range sets {
		for _, r := range []float64{6, 10} {
			base, err := NewEngine(ds, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			want, err := base.RunTopK(r, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range []Options{
				{Workers: 2},
				{Workers: 3},
				{Workers: 8},
				{Workers: 4, LB: LBHashP},
				{Workers: 4, UB: UBGreedyD},
				{Workers: 2, LB: LBHashP, UB: UBGreedyD},
				{Workers: 1, FreezeMinPoints: 8},
				{Workers: 4, FreezeMinPoints: 8},
				{Workers: 4, DisableFreeze: true},
				{Workers: 1, FreezeMinPoints: 128},
				{Workers: 5, FreezeMinPoints: 128},
			} {
				eng, err := NewEngine(ds, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.RunTopK(r, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.TopK, want.TopK) {
					t.Errorf("%s r=%g opts=%+v: topk %v, want %v", name, r, opts, got.TopK, want.TopK)
				}
				if got.Stats.DistanceComps != want.Stats.DistanceComps {
					t.Errorf("%s r=%g opts=%+v: dist_comps %d, want %d (serial)",
						name, r, opts, got.Stats.DistanceComps, want.Stats.DistanceComps)
				}
				if got.Stats.Candidates != want.Stats.Candidates || got.Stats.Verified != want.Stats.Verified {
					t.Errorf("%s r=%g opts=%+v: candidates/verified %d/%d, want %d/%d",
						name, r, opts, got.Stats.Candidates, got.Stats.Verified,
						want.Stats.Candidates, want.Stats.Verified)
				}
			}
		}
	}
}

// TestKnobParityLabels extends the invariance contract to the §III-D
// label path: the label store COLLECTED by a parallel run must equal
// the serially collected one (the workers' share-empty vectors AND
// together to the serial full-mask condition), and a query CONSUMING
// those labels must report serial-identical counters at every worker
// count.
func TestKnobParityLabels(t *testing.T) {
	ds := testDatasets(t)["bird"]
	const r, k = 10, 3

	serialStore := labelstore.NewStore()
	serialEng, err := NewEngine(ds, Options{Workers: 1, Labels: serialStore})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serialEng.RunTopK(r, k); err != nil { // collect
		t.Fatal(err)
	}
	wantLabels, ok := serialStore.Get(int(10))
	if !ok {
		t.Fatal("serial run collected no labels")
	}
	want, err := serialEng.RunTopK(r, k) // consume
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 7} {
		store := labelstore.NewStore()
		eng, err := NewEngine(ds, Options{Workers: workers, Labels: store})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunTopK(r, k); err != nil {
			t.Fatal(err)
		}
		gotLabels, ok := store.Get(int(10))
		if !ok {
			t.Fatalf("workers=%d collected no labels", workers)
		}
		if !reflect.DeepEqual(gotLabels.PerObject, wantLabels.PerObject) {
			gm, gu, gv := gotLabels.Counts()
			wm, wu, wv := wantLabels.Counts()
			t.Fatalf("workers=%d: collected labels differ from serial (cleared mapped/upper/verify %d/%d/%d, want %d/%d/%d)",
				workers, gm, gu, gv, wm, wu, wv)
		}
		got, err := eng.RunTopK(r, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.TopK, want.TopK) {
			t.Errorf("workers=%d labeled run: topk %v, want %v", workers, got.TopK, want.TopK)
		}
		if got.Stats.DistanceComps != want.Stats.DistanceComps {
			t.Errorf("workers=%d labeled run: dist_comps %d, want %d",
				workers, got.Stats.DistanceComps, want.Stats.DistanceComps)
		}
	}
}
