// Package core implements the paper's MIO query processing pipeline:
// online BIGrid construction (Algorithm 3), lower-bounding with the
// small-grid (Algorithm 4), upper-bounding and pruning with the
// large-grid (Algorithm 5), best-first verification with early
// termination (Algorithm 6, Corollary 1), the top-k variant, the
// point-labeling scheme that recycles work across queries sharing ⌈r⌉
// (§III-D), the parallel variants of every phase (§IV), and the
// temporal extension (Appendix B).
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/fault"
)

// LBStrategy selects the parallel lower-bounding partitioning of §IV.
type LBStrategy int

const (
	// LBGreedyD partitions the object set O across cores with a greedy
	// multiway number partition on key-list sizes ("dividing O").
	LBGreedyD LBStrategy = iota
	// LBHashP partitions each object's key list across cores with local
	// bitsets merged afterwards ("dividing P_i").
	LBHashP
)

func (s LBStrategy) String() string {
	if s == LBHashP {
		return "LB-hash-p"
	}
	return "LB-greedy-d"
}

// UBStrategy selects the parallel upper-bounding partitioning of §IV.
type UBStrategy int

const (
	// UBGreedyP assigns point groups P_{i,K} to cores greedily using the
	// Eq. (3) cost model.
	UBGreedyP UBStrategy = iota
	// UBGreedyD greedily partitions O by |P_i|, ignoring per-point cost
	// differences (the paper's strawman competitor).
	UBGreedyD
)

func (s UBStrategy) String() string {
	if s == UBGreedyD {
		return "UB-greedy-d"
	}
	return "UB-greedy-p"
}

// Options configures an Engine.
type Options struct {
	// Dims is the data dimensionality, 2 or 3 (default 3). It only
	// affects the small-grid cell width (r/√2 vs r/√3).
	Dims int
	// Workers is the number of CPU cores to use; values below 2 select
	// the single-core algorithms of §III.
	Workers int
	// LB and UB pick the parallel partitioning strategies (§IV). They
	// are ignored when Workers < 2.
	LB LBStrategy
	UB UBStrategy
	// Labels, when non-nil, enables §III-D: queries consult the store
	// for labels matching ⌈r⌉ and, when none exist, collect and save
	// them as a side effect.
	Labels *labelstore.Store
	// CollectLabels disables label collection when false even though a
	// store is configured (useful to measure the plain algorithm).
	// Default true when Labels is set.
	DisableCollect bool
	// DisableFreeze disables the lazy SoA freezing of probed large-grid
	// cells (grid.LargeCell.EnsureFrozen), forcing verification onto
	// the AoS posting walk everywhere. The answer and the distComps
	// counter are identical either way; the flag exists to measure the
	// layout's effect (see DESIGN.md §11) and as an escape hatch if
	// freeze memory ever matters more than verification speed.
	DisableFreeze bool
	// FreezeMinPoints is the minimum number of points a large-grid cell
	// must hold before verification freezes it into SoA form on first
	// probe. Cells below the threshold keep the AoS walk: flattening a
	// handful of points costs more than it saves. 0 selects
	// DefaultFreezeMinPoints; ignored when DisableFreeze is set.
	FreezeMinPoints int
	// Faults, when non-nil, is consulted at the entry of every pipeline
	// phase (the internal/fault points "engine.label_input" through
	// "engine.verification") so chaos tests can inject latency spikes,
	// errors and panics into a running engine. Nil costs one pointer
	// check per phase.
	Faults *fault.Registry
}

func (o Options) dims() int {
	if o.Dims == 2 {
		return 2
	}
	return 3
}

func (o Options) workers() int {
	if o.Workers < 2 {
		return 1
	}
	return o.Workers
}

// DefaultFreezeMinPoints is the default FreezeMinPoints threshold. Cell
// point counts are heavily skewed (the p50 cell holds a few points, the
// p99 cell hundreds), and verification time concentrates in the big
// cells — so only those repay the one-time flattening cost.
const DefaultFreezeMinPoints = 32

// freezeMin resolves the effective freeze threshold; 0 disables
// freezing entirely.
func (o Options) freezeMin() int {
	if o.DisableFreeze {
		return 0
	}
	if o.FreezeMinPoints > 0 {
		return o.FreezeMinPoints
	}
	return DefaultFreezeMinPoints
}

// Scored pairs an object id with its exact MIO score.
//
// The json tags on Scored, Result, PhaseStats and SweepResult define
// the wire format served by internal/server and are a compatibility
// surface: snake_case names, durations in nanoseconds (_ns suffix).
type Scored struct {
	Obj   int `json:"obj"`
	Score int `json:"score"`
}

// PhaseStats records the per-phase wall-clock breakdown of one query
// (the paper's Table II) plus work counters.
type PhaseStats struct {
	LabelInput    time.Duration `json:"label_input_ns"`
	GridMapping   time.Duration `json:"grid_mapping_ns"`
	LowerBounding time.Duration `json:"lower_bounding_ns"`
	UpperBounding time.Duration `json:"upper_bounding_ns"`
	Verification  time.Duration `json:"verification_ns"`

	UsedLabels bool `json:"used_labels"` // ran the §III-D variants
	// LabelPersistFailed reports that collected labels could not be
	// committed to the store's disk backing; the answer is still exact
	// and the labels stay warm in memory for this process.
	LabelPersistFailed bool `json:"label_persist_failed,omitempty"`
	LabelBytes         int  `json:"label_bytes"` // size of the label set read (O(nm) per §III-D)
	Candidates         int  `json:"candidates"`  // |O_cand| after upper-bounding
	Verified           int  `json:"verified"`    // objects whose exact score was computed
	// DistanceComps counts point pairs resolved during verification:
	// pairs whose distance was evaluated plus pairs rejected in bulk by
	// a frozen posting's AABB. The count is layout-independent — frozen
	// and AoS runs of the same query report the same number.
	DistanceComps int `json:"distance_comps"`
	AdjComputed   int `json:"adj_computed"` // b^adj cells materialised

	SmallCells int `json:"small_cells"`
	LargeCells int `json:"large_cells"`
	IndexBytes int `json:"index_bytes"` // BIGrid memory footprint
	// Compression accounting (footnote 4 of the paper): the small-grid
	// bitset payload as stored vs what dense n-bit-per-cell bitsets
	// would occupy.
	SmallGridBytes             int `json:"small_grid_bytes"`
	SmallGridUncompressedBytes int `json:"small_grid_uncompressed_bytes"`
	LargeGridBytes             int `json:"large_grid_bytes"`
}

// Total returns the end-to-end processing time.
func (s PhaseStats) Total() time.Duration {
	return s.LabelInput + s.GridMapping + s.LowerBounding + s.UpperBounding + s.Verification
}

// Interval is a closed score interval [LB, UB] certified by the
// pipeline's bound bookkeeping: the true score of the object it
// annotates is guaranteed to lie inside it (Lemmas 1 and 2).
type Interval struct {
	LB int `json:"lb"`
	UB int `json:"ub"`
}

// Result is the answer to an MIO query.
type Result struct {
	// Best is the most interactive object and its score. For k > 1 it
	// is TopK[0]. On a degraded result Best.Score is the certified
	// lower bound Interval.LB, not the exact score.
	Best Scored `json:"best"`
	// TopK holds the k best objects in non-increasing score order. A
	// degraded result carries only the single best candidate.
	TopK  []Scored   `json:"top_k"`
	Stats PhaseStats `json:"stats"`

	// Degraded marks a partial answer produced because the context
	// deadline expired mid-pipeline (RunTopKDegradedContext): Best is
	// the most promising candidate by certified lower bound, and
	// Interval brackets its exact score.
	Degraded bool      `json:"degraded,omitempty"`
	Interval *Interval `json:"interval,omitempty"`
}

// Engine processes MIO queries over one static, memory-resident
// dataset.
type Engine struct {
	ds   *data.Dataset
	opts Options
}

// NewEngine returns an engine over ds. The dataset must satisfy
// Validate and must not be mutated afterwards.
func NewEngine(ds *data.Dataset, opts Options) (*Engine, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if ds.N() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if opts.Dims != 0 && opts.Dims != 2 && opts.Dims != 3 {
		return nil, fmt.Errorf("core: invalid Dims %d (want 2 or 3)", opts.Dims)
	}
	return &Engine{ds: ds, opts: opts}, nil
}

// Dataset returns the engine's dataset.
func (e *Engine) Dataset() *data.Dataset { return e.ds }

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// Run processes an MIO query with threshold r and returns the most
// interactive object.
func (e *Engine) Run(r float64) (*Result, error) { return e.RunTopK(r, 1) }

// RunTopK processes the top-k variant: the k objects with the highest
// scores (§III-C). k is clamped to the dataset size.
func (e *Engine) RunTopK(r float64, k int) (*Result, error) {
	return e.RunTopKContext(context.Background(), r, k)
}

// RunContext is Run with cancellation: the query checks ctx between
// pipeline phases and periodically inside them, returning ctx.Err()
// once observed.
func (e *Engine) RunContext(ctx context.Context, r float64) (*Result, error) {
	return e.RunTopKContext(ctx, r, 1)
}

// RunTopKContext is RunTopK with cancellation.
func (e *Engine) RunTopKContext(ctx context.Context, r float64, k int) (*Result, error) {
	return e.runTopK(ctx, r, k, false)
}

// RunTopKDegradedContext is RunTopKContext with deadline degradation:
// when ctx expires after the lower-bounding phase has completed, the
// work already done is not discarded — instead of ctx.Err() the call
// returns a Result with Degraded set, holding the best candidate by
// certified lower bound and the [LB, UB] interval that provably
// contains its exact score. Expiry before lower bounding completes
// still returns ctx.Err(): no sound bound exists yet.
func (e *Engine) RunTopKDegradedContext(ctx context.Context, r float64, k int) (*Result, error) {
	return e.runTopK(ctx, r, k, true)
}

func (e *Engine) runTopK(ctx context.Context, r float64, k int, degrade bool) (*Result, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: distance threshold must be positive, got %g", r)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be at least 1, got %d", k)
	}
	if k > e.ds.N() {
		k = e.ds.N()
	}
	q := newQuery(e, r, k)
	q.ctx = ctx
	q.degradeOK = degrade
	return q.run()
}

// Explain renders a human-readable account of what the pipeline did
// for this result: phase times, pruning effectiveness and index
// footprint. It is a debugging and teaching aid, not a stable format.
func (r *Result) Explain(n int) string {
	st := r.Stats
	var b strings.Builder
	fmt.Fprintf(&b, "answer: object %d with score %d (top-%d returned)\n",
		r.Best.Obj, r.Best.Score, len(r.TopK))
	if st.UsedLabels {
		fmt.Fprintf(&b, "labels: reused %.2f MiB of per-point labels (loaded in %v)\n",
			float64(st.LabelBytes)/(1<<20), st.LabelInput)
	}
	fmt.Fprintf(&b, "grid mapping:   %10v  (%d small cells, %d large cells, %.2f MiB index)\n",
		st.GridMapping, st.SmallCells, st.LargeCells, float64(st.IndexBytes)/(1<<20))
	fmt.Fprintf(&b, "lower bounding: %10v\n", st.LowerBounding)
	fmt.Fprintf(&b, "upper bounding: %10v  (%d adjacency bitsets built)\n",
		st.UpperBounding, st.AdjComputed)
	pruned := n - st.Candidates
	fmt.Fprintf(&b, "pruning:        %d of %d objects eliminated without any distance computation (%.1f%%)\n",
		pruned, n, 100*float64(pruned)/float64(max(n, 1)))
	fmt.Fprintf(&b, "verification:   %10v  (%d of %d candidates verified, %d distance computations)\n",
		st.Verification, st.Verified, st.Candidates, st.DistanceComps)
	fmt.Fprintf(&b, "total:          %10v\n", st.Total())
	return b.String()
}
