package core

import (
	"reflect"
	"testing"

	"mio/internal/baseline"
	"mio/internal/data"
)

func temporalDataset(tb testing.TB) *data.Dataset {
	tb.Helper()
	base := data.GenTrajectory(data.TrajectoryConfig{
		N: 80, M: 25, Groups: 5, FieldSize: 3000, Speed: 25, FollowStd: 10, Solo: 0.4, Seed: 21,
	})
	ds := data.WithTimestamps(base, 1.0, 40, 22)
	if err := ds.Validate(); err != nil {
		tb.Fatal(err)
	}
	return ds
}

func TestTemporalMatchesOracle(t *testing.T) {
	ds := temporalDataset(t)
	eng, err := NewTemporalEngine(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{20, 50} {
		for _, delta := range []float64{2, 8, 25} {
			oracle := baseline.TemporalNLScores(ds, r, delta)
			res, err := eng.RunTopK(r, delta, 4)
			if err != nil {
				t.Fatalf("r=%g δ=%g: %v", r, delta, err)
			}
			want := baselineScores(baseline.TopKFromScores(oracle, 4))
			got := scoreMultiset(res.TopK)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("r=%g δ=%g: scores %v, oracle %v", r, delta, got, want)
			}
			for _, s := range res.TopK {
				if oracle[s.Obj] != s.Score {
					t.Errorf("r=%g δ=%g: obj %d reported %d, true %d", r, delta, s.Obj, s.Score, oracle[s.Obj])
				}
			}
		}
	}
}

func TestTemporalDeltaZero(t *testing.T) {
	// δ = 0: only points generated at exactly the same instant count
	// (the appendix's special case). The generator stamps points on a
	// shared tick grid, so exact matches exist.
	ds := temporalDataset(t)
	// Snap all timestamps onto integers so exact collisions occur.
	for i := range ds.Objects {
		for j := range ds.Objects[i].Times {
			ds.Objects[i].Times[j] = float64(int(ds.Objects[i].Times[j]))
		}
	}
	eng, _ := NewTemporalEngine(ds, Options{})
	r := 50.0
	oracle := baseline.TemporalNLScores(ds, r, 0)
	res, err := eng.RunTopK(r, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := baselineScores(baseline.TopKFromScores(oracle, 3))
	if got := scoreMultiset(res.TopK); !reflect.DeepEqual(got, want) {
		t.Errorf("δ=0: scores %v, oracle %v", got, want)
	}
}

func TestTemporalLargeDeltaEqualsSpatial(t *testing.T) {
	// With δ spanning the whole time horizon the temporal constraint is
	// vacuous and the answer must match the purely spatial engine.
	ds := temporalDataset(t)
	spatial := &data.Dataset{Name: ds.Name}
	for i := range ds.Objects {
		spatial.Objects = append(spatial.Objects, data.Object{ID: i, Pts: ds.Objects[i].Pts})
	}
	r := 40.0
	se, _ := NewEngine(spatial, Options{})
	sres, _ := se.RunTopK(r, 5)
	te, _ := NewTemporalEngine(ds, Options{})
	tres, err := te.RunTopK(r, 1e9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scoreMultiset(tres.TopK), scoreMultiset(sres.TopK)) {
		t.Errorf("huge δ: temporal %v vs spatial %v", scoreMultiset(tres.TopK), scoreMultiset(sres.TopK))
	}
}

func TestTemporalErrors(t *testing.T) {
	ds := temporalDataset(t)
	eng, _ := NewTemporalEngine(ds, Options{})
	if _, err := eng.Run(0, 5); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := eng.Run(5, -1); err == nil {
		t.Error("negative δ accepted")
	}
	if _, err := eng.RunTopK(5, 5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	noTimes := data.GenUniform(data.UniformConfig{N: 5, M: 3, FieldSize: 10, Spread: 2, Seed: 3})
	if _, err := NewTemporalEngine(noTimes, Options{}); err == nil {
		t.Error("dataset without timestamps accepted")
	}
}

func TestTemporalParallelMatchesSerial(t *testing.T) {
	ds := temporalDataset(t)
	serial, _ := NewTemporalEngine(ds, Options{})
	want, err := serial.RunTopK(50, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		eng, _ := NewTemporalEngine(ds, Options{Workers: workers})
		got, err := eng.RunTopK(50, 8, 4)
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(scoreMultiset(got.TopK), scoreMultiset(want.TopK)) {
			t.Fatalf("w=%d: %v vs %v", workers, scoreMultiset(got.TopK), scoreMultiset(want.TopK))
		}
	}
	// δ = 0 exercises the interned-timestamp read path under workers.
	for i := range ds.Objects {
		for j := range ds.Objects[i].Times {
			ds.Objects[i].Times[j] = float64(int(ds.Objects[i].Times[j]))
		}
	}
	oracle := baseline.TemporalNLScores(ds, 50, 0)
	eng, _ := NewTemporalEngine(ds, Options{Workers: 3})
	res, err := eng.RunTopK(50, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantScores := baselineScores(baseline.TopKFromScores(oracle, 2))
	if !reflect.DeepEqual(scoreMultiset(res.TopK), wantScores) {
		t.Fatalf("δ=0 parallel: %v vs %v", scoreMultiset(res.TopK), wantScores)
	}
}
