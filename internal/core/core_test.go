package core

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	"mio/internal/baseline"
	"mio/internal/core/labelstore"
	"mio/internal/data"
)

// testDatasets builds small versions of all five stand-in datasets plus
// a uniform control.
func testDatasets(tb testing.TB) map[string]*data.Dataset {
	tb.Helper()
	sets := map[string]*data.Dataset{
		"neuron": data.GenNeuron(data.NeuronConfig{
			N: 40, M: 120, Clusters: 4, FieldSize: 250, ClusterStd: 25, StepLen: 1.5, Branches: 4, Seed: 11,
		}),
		"bird": data.GenTrajectory(data.TrajectoryConfig{
			N: 120, M: 30, Groups: 6, FieldSize: 4000, Speed: 25, FollowStd: 10, Solo: 0.4, Seed: 12,
		}),
		"syn": data.GenPowerLaw(data.PowerLawConfig{
			N: 300, M: 6, Alpha: 1.5, Clusters: 30, FieldSize: 8000, HubStd: 6, Seed: 13,
		}),
		"uniform": data.GenUniform(data.UniformConfig{
			N: 150, M: 8, FieldSize: 500, Spread: 12, Seed: 14,
		}),
	}
	for name, ds := range sets {
		if err := ds.Validate(); err != nil {
			tb.Fatalf("dataset %s invalid: %v", name, err)
		}
	}
	return sets
}

// rValues gives per-dataset thresholds that exercise sparse, medium and
// dense interaction regimes.
func rValues(name string) []float64 {
	switch name {
	case "neuron":
		return []float64{2, 5, 10}
	case "bird":
		return []float64{15, 40, 90}
	case "syn":
		return []float64{5, 12, 30}
	default:
		return []float64{4, 10, 25}
	}
}

// scoreMultiset extracts the sorted score list for comparing top-k
// answers whose tie-breaks may differ.
func scoreMultiset(s []Scored) []int {
	out := make([]int, len(s))
	for i, e := range s {
		out[i] = e.Score
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

func baselineScores(s []baseline.Scored) []int {
	out := make([]int, len(s))
	for i, e := range s {
		out[i] = e.Score
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

func TestEngineMatchesNLOracle(t *testing.T) {
	for name, ds := range testDatasets(t) {
		for _, r := range rValues(name) {
			oracle := baseline.NLScores(ds, r)
			eng, err := NewEngine(ds, Options{})
			if err != nil {
				t.Fatalf("%s: NewEngine: %v", name, err)
			}
			res, err := eng.Run(r)
			if err != nil {
				t.Fatalf("%s r=%g: Run: %v", name, r, err)
			}
			bestScore := 0
			for _, s := range oracle {
				if s > bestScore {
					bestScore = s
				}
			}
			if res.Best.Score != bestScore {
				t.Errorf("%s r=%g: best score %d, oracle %d", name, r, res.Best.Score, bestScore)
			}
			if oracle[res.Best.Obj] != res.Best.Score {
				t.Errorf("%s r=%g: reported object %d has oracle score %d, engine said %d",
					name, r, res.Best.Obj, oracle[res.Best.Obj], res.Best.Score)
			}
		}
	}
}

func TestEngineBoundsSandwichExactScores(t *testing.T) {
	for name, ds := range testDatasets(t) {
		for _, r := range rValues(name) {
			oracle := baseline.NLScores(ds, r)
			eng, _ := NewEngine(ds, Options{})
			q := newQuery(eng, r, 1)
			q.gridMapping()
			q.lowerBounding()
			q.upperBounding(0)
			for i, exact := range oracle {
				if int(q.tauLow[i]) > exact {
					t.Fatalf("%s r=%g obj %d: lower bound %d > exact %d", name, r, i, q.tauLow[i], exact)
				}
				if int(q.tauUpp[i]) < exact {
					t.Fatalf("%s r=%g obj %d: upper bound %d < exact %d", name, r, i, q.tauUpp[i], exact)
				}
			}
		}
	}
}

func TestEngineTopKMatchesOracle(t *testing.T) {
	for name, ds := range testDatasets(t) {
		r := rValues(name)[1]
		oracle := baseline.NLScores(ds, r)
		eng, _ := NewEngine(ds, Options{})
		for _, k := range []int{1, 3, 10, 25} {
			res, err := eng.RunTopK(r, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			want := baselineScores(baseline.TopKFromScores(oracle, k))
			got := scoreMultiset(res.TopK)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s r=%g k=%d: top-k scores %v, oracle %v", name, r, k, got, want)
			}
			// Every reported object's score must be its true score.
			for _, s := range res.TopK {
				if oracle[s.Obj] != s.Score {
					t.Errorf("%s k=%d: object %d reported %d, true %d", name, k, s.Obj, s.Score, oracle[s.Obj])
				}
			}
		}
	}
}

func TestEngineParallelMatchesSerial(t *testing.T) {
	for name, ds := range testDatasets(t) {
		r := rValues(name)[1]
		serialEng, _ := NewEngine(ds, Options{})
		serial, err := serialEng.RunTopK(r, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			for _, lb := range []LBStrategy{LBGreedyD, LBHashP} {
				for _, ub := range []UBStrategy{UBGreedyP, UBGreedyD} {
					eng, _ := NewEngine(ds, Options{Workers: workers, LB: lb, UB: ub})
					res, err := eng.RunTopK(r, 5)
					if err != nil {
						t.Fatalf("%s w=%d %v/%v: %v", name, workers, lb, ub, err)
					}
					if !reflect.DeepEqual(scoreMultiset(res.TopK), scoreMultiset(serial.TopK)) {
						t.Errorf("%s w=%d %v/%v: scores %v, serial %v",
							name, workers, lb, ub, scoreMultiset(res.TopK), scoreMultiset(serial.TopK))
					}
				}
			}
		}
	}
}

func TestEngineLabelsPreserveResults(t *testing.T) {
	for name, ds := range testDatasets(t) {
		store := labelstore.NewStore()
		eng, _ := NewEngine(ds, Options{Labels: store})
		plain, _ := NewEngine(ds, Options{})
		// Query sequence with shared ⌈r⌉ values: the first query per
		// ceiling collects labels, later ones consume them.
		rs := append(rValues(name), rValues(name)...)
		for qi, r := range rs {
			want, err := plain.RunTopK(r, 3)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.RunTopK(r, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scoreMultiset(got.TopK), scoreMultiset(want.TopK)) {
				t.Errorf("%s query %d r=%g: labeled scores %v, plain %v (usedLabels=%v)",
					name, qi, r, scoreMultiset(got.TopK), scoreMultiset(want.TopK), got.Stats.UsedLabels)
			}
			if qi >= len(rs)/2 && !got.Stats.UsedLabels {
				t.Errorf("%s query %d r=%g: expected label reuse", name, qi, r)
			}
		}
	}
}

func TestEngineLabelsWithParallel(t *testing.T) {
	ds := testDatasets(t)["bird"]
	r := 40.0
	plain, _ := NewEngine(ds, Options{})
	want, _ := plain.RunTopK(r, 3)
	store := labelstore.NewStore()
	eng, _ := NewEngine(ds, Options{Labels: store, Workers: 4})
	for pass := 0; pass < 3; pass++ {
		got, err := eng.RunTopK(r, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scoreMultiset(got.TopK), scoreMultiset(want.TopK)) {
			t.Fatalf("pass %d: scores %v, want %v", pass, scoreMultiset(got.TopK), scoreMultiset(want.TopK))
		}
	}
}

func TestEngineAgainstSGAndNLKD(t *testing.T) {
	ds := testDatasets(t)["neuron"]
	for _, r := range rValues("neuron") {
		eng, _ := NewEngine(ds, Options{})
		res, _ := eng.RunTopK(r, 5)
		sg := baseline.SG(ds, r, 5)
		nlkd := baseline.NLKD(ds, r, 5)
		if !reflect.DeepEqual(scoreMultiset(res.TopK), baselineScores(sg)) {
			t.Errorf("r=%g: engine %v vs SG %v", r, scoreMultiset(res.TopK), baselineScores(sg))
		}
		if !reflect.DeepEqual(baselineScores(sg), baselineScores(nlkd)) {
			t.Errorf("r=%g: SG %v vs NLKD %v", r, baselineScores(sg), baselineScores(nlkd))
		}
	}
}

func TestEngineErrors(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 10, M: 4, FieldSize: 100, Spread: 5, Seed: 1})
	if _, err := NewEngine(&data.Dataset{}, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewEngine(ds, Options{Dims: 5}); err == nil {
		t.Error("bad dims accepted")
	}
	eng, _ := NewEngine(ds, Options{})
	if _, err := eng.Run(0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := eng.Run(-3); err == nil {
		t.Error("negative r accepted")
	}
	if _, err := eng.RunTopK(5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// k larger than n clamps.
	res, err := eng.RunTopK(5, 100)
	if err != nil {
		t.Fatalf("k>n: %v", err)
	}
	if len(res.TopK) != 10 {
		t.Errorf("k>n returned %d results, want 10", len(res.TopK))
	}
	bad := &data.Dataset{Objects: []data.Object{{ID: 1}}}
	if _, err := NewEngine(bad, Options{}); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestEngine2D(t *testing.T) {
	// Bird data is planar; Dims=2 widens the small-grid cells (r/√2 vs
	// r/√3) and must produce identical answers with tighter bounds.
	ds := testDatasets(t)["bird"]
	r := 40.0
	oracle := baseline.NLScores(ds, r)
	best := 0
	for _, s := range oracle {
		if s > best {
			best = s
		}
	}
	eng2, _ := NewEngine(ds, Options{Dims: 2})
	res2, err := eng2.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Best.Score != best {
		t.Fatalf("2D best score %d, oracle %d", res2.Best.Score, best)
	}
	// The 2-D small grid has fewer, larger cells, so lower bounds can
	// only improve (or stay equal) relative to 3-D. Check pipeline
	// consistency instead of exact equality: bounds sandwich.
	q := newQuery(eng2, r, 1)
	q.gridMapping()
	q.lowerBounding()
	q.upperBounding(0)
	for i, exact := range oracle {
		if int(q.tauLow[i]) > exact || int(q.tauUpp[i]) < exact {
			t.Fatalf("obj %d: bounds [%d,%d] miss exact %d", i, q.tauLow[i], q.tauUpp[i], exact)
		}
	}
}

func TestSingleObjectDataset(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 1, M: 5, FieldSize: 10, Spread: 2, Seed: 9})
	eng, _ := NewEngine(ds, Options{})
	res, err := eng.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Obj != 0 || res.Best.Score != 0 {
		t.Fatalf("single-object result = %+v", res.Best)
	}
}

func TestStatsPopulated(t *testing.T) {
	ds := testDatasets(t)["syn"]
	eng, _ := NewEngine(ds, Options{})
	res, _ := eng.Run(12)
	st := res.Stats
	if st.GridMapping <= 0 || st.SmallCells == 0 || st.LargeCells == 0 {
		t.Errorf("grid stats missing: %+v", st)
	}
	if st.IndexBytes <= 0 {
		t.Error("IndexBytes not populated")
	}
	if st.Verified == 0 || st.Candidates == 0 {
		t.Errorf("verification stats missing: %+v", st)
	}
	if st.Verified > st.Candidates {
		t.Errorf("verified %d > candidates %d", st.Verified, st.Candidates)
	}
	if st.Total() <= 0 {
		t.Error("Total() not positive")
	}
}

func TestPruningActuallyPrunes(t *testing.T) {
	// On the skewed syn dataset most objects must be pruned before
	// verification — that is the whole point of the paper.
	ds := testDatasets(t)["syn"]
	eng, _ := NewEngine(ds, Options{})
	res, _ := eng.Run(12)
	if res.Stats.Verified >= ds.N()/2 {
		t.Errorf("verified %d of %d objects; pruning ineffective", res.Stats.Verified, ds.N())
	}
}

func TestQueryCancellation(t *testing.T) {
	ds := testDatasets(t)["syn"]
	eng, _ := NewEngine(ds, Options{})
	// Already-cancelled context fails fast with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunTopKContext(ctx, 12, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A background context behaves like the plain call.
	res, err := eng.RunTopKContext(context.Background(), 12, 3)
	if err != nil || len(res.TopK) != 3 {
		t.Fatalf("background run: %v %v", res, err)
	}
	// A deadline in the past cancels too.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := eng.RunContext(dctx, 12); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline err = %v", err)
	}
}
