package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"mio/internal/baseline"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/fault"
)

// comparableResult is the parity surface between the solo and group
// paths: everything except wall-clock durations and the index byte
// sizes, which legitimately differ when structures are shared.
type comparableResult struct {
	Best     Scored
	TopK     []Scored
	Degraded bool
	Interval *Interval

	UsedLabels    bool
	Candidates    int
	Verified      int
	DistanceComps int
	AdjComputed   int
	SmallCells    int
	LargeCells    int
}

func stripVolatile(r *Result) *comparableResult {
	if r == nil {
		return nil
	}
	return &comparableResult{
		Best:     r.Best,
		TopK:     r.TopK,
		Degraded: r.Degraded,
		Interval: r.Interval,

		UsedLabels:    r.Stats.UsedLabels,
		Candidates:    r.Stats.Candidates,
		Verified:      r.Stats.Verified,
		DistanceComps: r.Stats.DistanceComps,
		AdjComputed:   r.Stats.AdjComputed,
		SmallCells:    r.Stats.SmallCells,
		LargeCells:    r.Stats.LargeCells,
	}
}

// groupParityOptions are the engine configurations the parity suite
// sweeps: serial and parallel, labels on and off, freezing on and off.
func groupParityOptions(withStore func() *labelstore.Store) []Options {
	return []Options{
		{},
		{Workers: 4},
		{DisableFreeze: true},
		{Labels: withStore()},
		{Workers: 4, Labels: withStore(), FreezeMinPoints: 8},
	}
}

// soloOracle runs one spec through the query-major path on a fresh
// engine whose label store carries the same initial state the group
// engine started with (warm rebuilds it via the warm closure).
func soloOracle(t *testing.T, ds *data.Dataset, opts Options, warm func(Options) Options, sp GroupSpec) (*Result, error) {
	t.Helper()
	eng, err := NewEngine(ds, warm(opts))
	if err != nil {
		t.Fatalf("solo engine: %v", err)
	}
	ctx := sp.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if sp.Degrade {
		return eng.RunTopKDegradedContext(ctx, sp.R, sp.K)
	}
	return eng.RunTopKContext(ctx, sp.R, sp.K)
}

// TestRunGroupParityExact is the core parity theorem: a group of
// live queries sharing ⌈r⌉ returns, member for member, results
// bitwise-identical (scores, counters, everything but durations and
// byte sizes) to the query-major path.
func TestRunGroupParityExact(t *testing.T) {
	for name, ds := range testDatasets(t) {
		rs := rValues(name)
		base := rs[1]
		ceil := math.Ceil(base)
		// Distinct exact thresholds sharing one ⌈r⌉, plus duplicates
		// to exercise plan sharing.
		specs := []GroupSpec{
			{R: ceil, K: 1},
			{R: ceil - 0.3, K: 3},
			{R: ceil - 0.7, K: 1},
			{R: ceil, K: 1},
			{R: ceil - 0.3, K: 5},
		}
		for oi, opts := range groupParityOptions(labelstore.NewStore) {
			eng, err := NewEngine(ds, opts)
			if err != nil {
				t.Fatalf("%s: NewEngine: %v", name, err)
			}
			outs, rep := eng.RunGroup(context.Background(), specs)
			if rep.Members != len(specs) {
				t.Fatalf("%s opts %d: report members %d, want %d", name, oi, rep.Members, len(specs))
			}
			if rep.RVariants != 3 || rep.Plans != 4 {
				t.Errorf("%s opts %d: report %+v, want 3 r-variants and 4 plans", name, oi, rep)
			}
			warm := func(o Options) Options {
				if o.Labels != nil {
					o.Labels = labelstore.NewStore()
				}
				return o
			}
			for i, sp := range specs {
				if outs[i].Err != nil {
					t.Fatalf("%s opts %d member %d: %v", name, oi, i, outs[i].Err)
				}
				want, err := soloOracle(t, ds, opts, warm, sp)
				if err != nil {
					t.Fatalf("%s opts %d member %d solo: %v", name, oi, i, err)
				}
				if got, exp := stripVolatile(outs[i].Result), stripVolatile(want); !reflect.DeepEqual(got, exp) {
					t.Errorf("%s opts %d member %d (r=%g k=%d): group %+v != solo %+v",
						name, oi, i, sp.R, sp.K, got, exp)
				}
			}
			// Members with identical (r, k) share one Result pointer —
			// the in-group coalescing contract.
			if outs[0].Result != outs[3].Result {
				t.Errorf("%s opts %d: identical (r,k) members did not share a Result", name, oi)
			}
		}
	}
}

// TestRunGroupParityWarmLabels repeats the parity check with a label
// store pre-warmed by an identical query on both sides, so the
// WITH-LABEL variants of every phase run in group mode.
func TestRunGroupParityWarmLabels(t *testing.T) {
	for name, ds := range testDatasets(t) {
		base := rValues(name)[1]
		ceil := math.Ceil(base)
		warmSpec := GroupSpec{R: ceil - 0.3, K: 2}
		mkWarmStore := func() *labelstore.Store {
			st := labelstore.NewStore()
			eng, err := NewEngine(ds, Options{Labels: st})
			if err != nil {
				t.Fatalf("%s: warm engine: %v", name, err)
			}
			if _, err := eng.RunTopK(warmSpec.R, warmSpec.K); err != nil {
				t.Fatalf("%s: warm run: %v", name, err)
			}
			if !st.Has(int(ceil)) {
				t.Fatalf("%s: warm run did not publish labels for ⌈r⌉=%d", name, int(ceil))
			}
			return st
		}
		specs := []GroupSpec{
			{R: ceil, K: 2},
			{R: ceil - 0.5, K: 1},
			{R: ceil - 0.3, K: 4},
		}
		for _, workers := range []int{1, 4} {
			opts := Options{Workers: workers, Labels: mkWarmStore()}
			eng, err := NewEngine(ds, opts)
			if err != nil {
				t.Fatalf("%s: NewEngine: %v", name, err)
			}
			outs, _ := eng.RunGroup(context.Background(), specs)
			warm := func(o Options) Options {
				o.Labels = mkWarmStore()
				return o
			}
			for i, sp := range specs {
				if outs[i].Err != nil {
					t.Fatalf("%s w=%d member %d: %v", name, workers, i, outs[i].Err)
				}
				if !outs[i].Result.Stats.UsedLabels {
					t.Fatalf("%s w=%d member %d: group run did not use warm labels", name, workers, i)
				}
				want, err := soloOracle(t, ds, opts, warm, sp)
				if err != nil {
					t.Fatalf("%s w=%d member %d solo: %v", name, workers, i, err)
				}
				if got, exp := stripVolatile(outs[i].Result), stripVolatile(want); !reflect.DeepEqual(got, exp) {
					t.Errorf("%s w=%d member %d (r=%g k=%d): group %+v != solo %+v",
						name, workers, i, sp.R, sp.K, got, exp)
				}
			}
		}
	}
}

// TestRunGroupParityRandomised fuzzes the grouping algebra: random
// spec sets within one ⌈r⌉, random options, always equal to the solo
// oracle.
func TestRunGroupParityRandomised(t *testing.T) {
	ds := data.GenPowerLaw(data.PowerLawConfig{
		N: 220, M: 6, Alpha: 1.5, Clusters: 25, FieldSize: 6000, HubStd: 6, Seed: 99,
	})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		ceil := float64(4 + rng.Intn(12))
		nspecs := 1 + rng.Intn(8)
		specs := make([]GroupSpec, nspecs)
		for i := range specs {
			specs[i] = GroupSpec{
				R: ceil - rng.Float64()*0.9,
				K: 1 + rng.Intn(6),
			}
		}
		opts := Options{}
		if rng.Intn(2) == 1 {
			opts.Workers = 2 + rng.Intn(3)
		}
		if rng.Intn(2) == 1 {
			opts.Labels = labelstore.NewStore()
		}
		eng, err := NewEngine(ds, opts)
		if err != nil {
			t.Fatalf("trial %d: NewEngine: %v", trial, err)
		}
		outs, _ := eng.RunGroup(context.Background(), specs)
		warm := func(o Options) Options {
			if o.Labels != nil {
				o.Labels = labelstore.NewStore()
			}
			return o
		}
		for i, sp := range specs {
			if outs[i].Err != nil {
				t.Fatalf("trial %d member %d: %v", trial, i, outs[i].Err)
			}
			want, err := soloOracle(t, ds, opts, warm, sp)
			if err != nil {
				t.Fatalf("trial %d member %d solo: %v", trial, i, err)
			}
			if got, exp := stripVolatile(outs[i].Result), stripVolatile(want); !reflect.DeepEqual(got, exp) {
				t.Errorf("trial %d member %d (r=%g k=%d): group %+v != solo %+v",
					trial, i, sp.R, sp.K, got, exp)
			}
		}
	}
}

// TestRunGroupBestMatchesOracle cross-checks the group path against
// the O(n²m²) nested-loop oracle directly, not just against the solo
// engine.
func TestRunGroupBestMatchesOracle(t *testing.T) {
	for name, ds := range testDatasets(t) {
		r := rValues(name)[0]
		ceil := math.Ceil(r)
		specs := []GroupSpec{{R: ceil, K: 1}, {R: ceil - 0.4, K: 1}}
		eng, _ := NewEngine(ds, Options{})
		outs, _ := eng.RunGroup(context.Background(), specs)
		for i, sp := range specs {
			if outs[i].Err != nil {
				t.Fatalf("%s member %d: %v", name, i, outs[i].Err)
			}
			oracle := baseline.NLScores(ds, sp.R)
			best := 0
			for _, s := range oracle {
				if s > best {
					best = s
				}
			}
			if got := outs[i].Result.Best.Score; got != best {
				t.Errorf("%s member %d r=%g: best %d, oracle %d", name, i, sp.R, got, best)
			}
		}
	}
}

// countdownCtx reports expiry after a fixed number of Err() polls —
// a deterministic stand-in for a deadline that fires mid-group.
type countdownCtx struct {
	context.Context
	polls atomic.Int64
	limit int64
}

func newCountdownCtx(limit int64) *countdownCtx {
	return &countdownCtx{Context: context.Background(), limit: limit}
}

func (c *countdownCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.DeadlineExceeded
	}
	return nil
}

func (c *countdownCtx) expired() bool { return c.polls.Load() > c.limit }

func TestRunGroupMemberDetachment(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 150, M: 8, FieldSize: 500, Spread: 12, Seed: 14})
	eng, _ := NewEngine(ds, Options{})

	preCancelled, cancel := context.WithCancel(context.Background())
	cancel()
	midRun := newCountdownCtx(3)
	midRunDegrade := newCountdownCtx(3)

	specs := []GroupSpec{
		{R: 10, K: 2},                                     // healthy
		{R: 10, K: 2, Ctx: preCancelled},                  // dead on arrival
		{R: 9.5, K: 1, Ctx: midRun},                       // detaches mid-group
		{R: 9.5, K: 3, Ctx: midRunDegrade, Degrade: true}, // degrades mid-group
		{R: 3, K: 1},                                      // wrong ⌈r⌉
		{R: -1, K: 1},                                     // invalid r
		{R: 10, K: 0},                                     // invalid k
	}
	outs, _ := eng.RunGroup(context.Background(), specs)

	// The healthy member is untouched by its neighbours' failures:
	// exact parity with a solo run.
	want, err := eng.RunTopKContext(context.Background(), 10, 2)
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	if outs[0].Err != nil {
		t.Fatalf("healthy member: %v", outs[0].Err)
	}
	if got, exp := stripVolatile(outs[0].Result), stripVolatile(want); !reflect.DeepEqual(got, exp) {
		t.Errorf("healthy member diverged: group %+v != solo %+v", got, exp)
	}

	// Dead on arrival: same ctx.Err() the solo path returns before any
	// bound exists.
	if !errors.Is(outs[1].Err, context.Canceled) {
		t.Errorf("pre-cancelled member: got (%v, %v), want context.Canceled", outs[1].Result, outs[1].Err)
	}

	// Mid-run detachment without Degrade: a context error, never a
	// partial result passed off as exact.
	if !midRun.expired() {
		t.Fatalf("countdown ctx never expired; test needs a later trigger")
	}
	if outs[2].Err == nil {
		// The member may still have completed before the poll noticed —
		// then it must be the exact answer.
		soloR, err := eng.RunTopKContext(context.Background(), 9.5, 1)
		if err != nil {
			t.Fatalf("solo r=9.5: %v", err)
		}
		if !reflect.DeepEqual(stripVolatile(outs[2].Result), stripVolatile(soloR)) {
			t.Errorf("detached member returned a non-exact, non-error result: %+v", outs[2].Result)
		}
	} else if !errors.Is(outs[2].Err, context.DeadlineExceeded) {
		t.Errorf("detached member: err %v, want DeadlineExceeded", outs[2].Err)
	}

	// Mid-run detachment with Degrade: a sound degraded answer (or the
	// exact one if the group finished first).
	if outs[3].Err != nil {
		if !errors.Is(outs[3].Err, context.DeadlineExceeded) {
			t.Errorf("degraded member: err %v", outs[3].Err)
		}
	} else if outs[3].Result.Degraded {
		oracle := baseline.NLScores(ds, 9.5)
		iv := outs[3].Result.Interval
		if iv == nil {
			t.Fatalf("degraded result without interval")
		}
		exact := oracle[outs[3].Result.Best.Obj]
		if exact < iv.LB || exact > iv.UB {
			t.Errorf("degraded interval unsound: exact %d outside [%d, %d]", exact, iv.LB, iv.UB)
		}
		if outs[3].Result.Best.Score != iv.LB {
			t.Errorf("degraded Best.Score %d != Interval.LB %d", outs[3].Result.Best.Score, iv.LB)
		}
	}

	if outs[4].Err == nil || outs[5].Err == nil || outs[6].Err == nil {
		t.Errorf("invalid members accepted: %v / %v / %v", outs[4].Err, outs[5].Err, outs[6].Err)
	}
}

// TestRunGroupEpochContext bounds the whole group: when the epoch
// context is already expired, every live member gets a context error
// (or a certified degraded answer when it opted in).
func TestRunGroupEpochContext(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 120, M: 8, FieldSize: 500, Spread: 12, Seed: 3})
	eng, _ := NewEngine(ds, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, _ := eng.RunGroup(ctx, []GroupSpec{{R: 8, K: 1}, {R: 8, K: 2, Degrade: true}})
	if !errors.Is(outs[0].Err, context.Canceled) {
		t.Errorf("member 0: got (%v, %v), want Canceled", outs[0].Result, outs[0].Err)
	}
	// Degrade member: the expired epoch leaves no completed lower
	// bounding, so no sound degraded answer exists either.
	if !errors.Is(outs[1].Err, context.Canceled) {
		t.Errorf("member 1: got (%v, %v), want Canceled", outs[1].Result, outs[1].Err)
	}
}

// TestRunGroupFaultPoints drives each batch-phase fault point and
// checks the blast radius: group-wide points fail every member,
// plan-scoped points fail only the plan's members.
func TestRunGroupFaultPoints(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 120, M: 8, FieldSize: 500, Spread: 12, Seed: 5})
	specs := []GroupSpec{{R: 8, K: 1}, {R: 7.5, K: 2}}

	for _, point := range []string{fault.PointGroupBuild, fault.PointGridMapping, fault.PointUpperBounding, fault.PointCellWalk} {
		reg := fault.New(1)
		reg.Arm(fault.Rule{Point: point, Kind: fault.KindError, P: 1})
		eng, _ := NewEngine(ds, Options{Faults: reg})
		outs, _ := eng.RunGroup(context.Background(), specs)
		for i := range outs {
			if !errors.Is(outs[i].Err, fault.ErrInjected) {
				t.Errorf("%s member %d: got (%v, %v), want injected error", point, i, outs[i].Result, outs[i].Err)
			}
		}
	}

	// Lower bounding fires once per r-plan: with the rule held back for
	// one draw, only the second r-plan's members fail and the first
	// survives with an exact result — the plan-scoped blast radius.
	reg := fault.New(1)
	reg.Arm(fault.Rule{Point: fault.PointLowerBounding, Kind: fault.KindError, P: 1, After: 1})
	eng, _ := NewEngine(ds, Options{Faults: reg})
	outs, _ := eng.RunGroup(context.Background(), specs)
	failed, ok := 0, 0
	for i := range outs {
		if errors.Is(outs[i].Err, fault.ErrInjected) {
			failed++
		} else if outs[i].Err == nil && outs[i].Result != nil {
			ok++
		}
	}
	if failed == 0 {
		t.Errorf("lower-bounding fault fired for no member: %+v", outs)
	}
	if failed == len(outs) {
		t.Errorf("lower-bounding fault took down the whole group; want plan-scoped blast radius")
	}
	if failed+ok != len(outs) {
		t.Errorf("outcomes neither failed nor exact: %+v", outs)
	}
}

func TestRunGroupEmptyAndSingle(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 100, M: 8, FieldSize: 500, Spread: 12, Seed: 8})
	eng, _ := NewEngine(ds, Options{})
	outs, rep := eng.RunGroup(context.Background(), nil)
	if len(outs) != 0 || rep.Members != 0 {
		t.Fatalf("empty group: %v %+v", outs, rep)
	}
	// A single-member group is the degenerate case and must equal the
	// solo path exactly.
	outs, rep = eng.RunGroup(context.Background(), []GroupSpec{{R: 9, K: 4}})
	if outs[0].Err != nil {
		t.Fatalf("single: %v", outs[0].Err)
	}
	want, _ := eng.RunTopK(9, 4)
	if !reflect.DeepEqual(stripVolatile(outs[0].Result), stripVolatile(want)) {
		t.Errorf("single-member group != solo: %+v vs %+v", stripVolatile(outs[0].Result), stripVolatile(want))
	}
	if rep.Plans != 1 || rep.RVariants != 1 {
		t.Errorf("single-member report: %+v", rep)
	}
}
