package core

// Phase-level benchmarks: one per pipeline stage, for profiling and
// performance-regression tracking. The root bench_test.go covers the
// paper's end-to-end tables; these isolate the internals.

import (
	"sync"
	"testing"

	"mio/internal/bitmap"
	"mio/internal/data"
	"mio/internal/grid"
)

var phaseDS = struct {
	once sync.Once
	ds   *data.Dataset
}{}

func phaseDataset() *data.Dataset {
	phaseDS.once.Do(func() {
		phaseDS.ds = data.GenTrajectory(data.TrajectoryConfig{
			N: 1500, M: 40, Groups: 10, FieldSize: 4000, Speed: 16, FollowStd: 6, Solo: 0.25, Seed: 71,
		})
	})
	return phaseDS.ds
}

func phaseQuery(b *testing.B, workers int) *query {
	b.Helper()
	eng, err := NewEngine(phaseDataset(), Options{Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	return newQuery(eng, 4, 1)
}

func BenchmarkPhaseGridMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q := phaseQuery(b, 1)
		q.gridMapping()
	}
}

func BenchmarkPhaseGridMappingParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q := phaseQuery(b, 2)
		q.gridMapping()
	}
}

func BenchmarkPhaseLowerBounding(b *testing.B) {
	q := phaseQuery(b, 1)
	q.gridMapping()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.lowerBounding()
	}
}

func BenchmarkPhaseUpperBounding(b *testing.B) {
	// Adjacency bitsets memoise inside the grid, so rebuild per
	// iteration to measure the true first-query cost; report with the
	// build excluded via timer control.
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q := phaseQuery(b, 1)
		q.gridMapping()
		q.lowerBounding()
		b.StartTimer()
		q.upperBounding(0)
	}
}

func BenchmarkPhaseVerificationExactScore(b *testing.B) {
	q := phaseQuery(b, 1)
	q.gridMapping()
	q.lowerBounding()
	q.upperBounding(0)
	bOi := bitmap.NewScratch(q.n)
	mask := bitmap.NewScratch(q.n)
	ctr := ctrSet{}
	var neigh [27]grid.Key
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.exactScore(i%q.n, bOi, mask, neigh[:0], &ctr)
	}
}

func BenchmarkPhaseAdjacencyUnion(b *testing.B) {
	q := phaseQuery(b, 1)
	q.gridMapping()
	keys := make([]grid.Key, 0, 4096)
	q.idx.large.ForEach(func(k grid.Key, _ *grid.LargeCell) {
		if len(keys) < 4096 {
			keys = append(keys, k)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Radius-1 unions without memoisation effects.
		q.idx.large.ComputeAdjRadius(keys[i%len(keys)], 1)
	}
}
