package core

import (
	"fmt"
	"os"
	"testing"
	"time"

	"mio/internal/baseline"
	"mio/internal/data"
)

func TestDiagDensity(t *testing.T) {
	if os.Getenv("MIO_DIAG") == "" {
		t.Skip("diagnostic; set MIO_DIAG=1 to run")
	}
	sets := data.Standard(1.0)
	for _, name := range []string{"Neuron", "Neuron-2", "Bird", "Bird-2", "Syn"} {
		ds := sets[name]
		r := 4.0
		e, _ := NewEngine(ds, Options{})
		t0 := time.Now()
		res, _ := e.Run(r)
		total := time.Since(t0)
		q := newQuery(e, r, 1)
		q.gridMapping()
		occ := 0
		maxOcc := 0
		sumCard := 0
		nCells := 0
		q.idx.large.ForEachCard(func(card int) {
			sumCard += card
			nCells++
			if card > maxOcc {
				maxOcc = card
			}
			if card > 1 {
				occ++
			}
		})
		t1 := time.Now()
		baseline.SG(ds, r, 1)
		sgTotal := time.Since(t1)
		fmt.Printf("%-9s n=%-6d cells=%-7d avgObjsPerCell=%.2f maxObjs=%d sharedCells=%.1f%% cand=%d verified=%d | BIGrid=%v SG=%v GM=%v LB=%v UB=%v V=%v\n",
			name, ds.N(), nCells, float64(sumCard)/float64(nCells), maxOcc,
			100*float64(occ)/float64(nCells), res.Stats.Candidates, res.Stats.Verified,
			total, sgTotal, res.Stats.GridMapping, res.Stats.LowerBounding, res.Stats.UpperBounding, res.Stats.Verification)
	}
}
