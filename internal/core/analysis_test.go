package core

import (
	"reflect"
	"strings"
	"testing"

	"mio/internal/baseline"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/geom"
)

func TestInteractingSetMatchesOracle(t *testing.T) {
	ds := data.GenTrajectory(data.TrajectoryConfig{
		N: 100, M: 20, Groups: 5, FieldSize: 2000, Speed: 20, FollowStd: 8, Solo: 0.3, Seed: 41,
	})
	eng, _ := NewEngine(ds, Options{})
	r := 25.0
	r2 := r * r
	for _, obj := range []int{0, 17, 99} {
		got, err := eng.InteractingSet(r, obj)
		if err != nil {
			t.Fatal(err)
		}
		var want []int
		for j := range ds.Objects {
			if j == obj {
				continue
			}
			found := false
			for _, p := range ds.Objects[obj].Pts {
				for _, q := range ds.Objects[j].Pts {
					if geom.Dist2(p, q) <= r2 {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if found {
				want = append(want, j)
			}
		}
		if want == nil {
			want = []int{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("obj %d: got %v, want %v", obj, got, want)
		}
	}
}

func TestInteractingSetErrors(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 5, M: 3, FieldSize: 20, Spread: 3, Seed: 1})
	eng, _ := NewEngine(ds, Options{})
	if _, err := eng.InteractingSet(0, 0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := eng.InteractingSet(5, -1); err == nil {
		t.Error("negative object accepted")
	}
	if _, err := eng.InteractingSet(5, 5); err == nil {
		t.Error("out-of-range object accepted")
	}
}

func TestAllScoresMatchesNL(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 70, M: 8, FieldSize: 120, Spread: 9, Seed: 43})
	eng, _ := NewEngine(ds, Options{})
	for _, r := range []float64{4, 12} {
		want := baseline.NLScores(ds, r)
		got, err := eng.AllScores(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("r=%g: AllScores mismatch", r)
		}
	}
	// Parallel path.
	engP, _ := NewEngine(ds, Options{Workers: 3})
	got, err := engP.AllScores(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, baseline.NLScores(ds, 8)) {
		t.Fatal("parallel AllScores mismatch")
	}
	if _, err := eng.AllScores(0); err == nil {
		t.Error("r=0 accepted")
	}
}

func TestSweepMatchesIndividualQueries(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 60, M: 6, FieldSize: 100, Spread: 8, Seed: 44})
	eng, _ := NewEngine(ds, Options{})
	rs := []float64{3, 6, 9}
	sweep, err := eng.Sweep(rs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != len(rs) {
		t.Fatalf("sweep results = %d", len(sweep))
	}
	for i, sr := range sweep {
		if sr.R != rs[i] {
			t.Fatalf("result %d has r=%g", i, sr.R)
		}
		single, _ := eng.RunTopK(rs[i], 2)
		if sr.Result.Best.Score != single.Best.Score {
			t.Fatalf("r=%g: sweep best %d vs single %d", rs[i], sr.Result.Best.Score, single.Best.Score)
		}
	}
	if _, err := eng.Sweep([]float64{2, -1}, 1); err == nil {
		t.Error("invalid threshold in sweep accepted")
	}
	// Scores must be monotone non-decreasing in r for the same object
	// set: larger r can only add interactions.
	prev := -1
	for _, sr := range sweep {
		if sr.Result.Best.Score < prev {
			t.Fatalf("best score decreased with r: %d -> %d", prev, sr.Result.Best.Score)
		}
		prev = sr.Result.Best.Score
	}
}

func TestScoreHistogram(t *testing.T) {
	counts, width := ScoreHistogram([]int{0, 1, 2, 9, 9, 9}, 5)
	if width != 2 {
		t.Fatalf("width = %d", width)
	}
	// bins: [0,1]=2, [2,3]=1, [4,5]=0, [6,7]=0, [8,9]=3
	want := []int{2, 1, 0, 0, 3}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	if c, _ := ScoreHistogram(nil, 3); c != nil {
		t.Fatal("nil scores")
	}
	if c, _ := ScoreHistogram([]int{1}, 0); c != nil {
		t.Fatal("zero buckets")
	}
}

func TestTopPercentile(t *testing.T) {
	scores := []int{5, 1, 9, 3, 7, 2, 8, 4, 6, 0} // 0..9
	if got := TopPercentile(scores, 1.0); got != 9 {
		t.Fatalf("p100 = %d", got)
	}
	if got := TopPercentile(scores, 0.5); got != 4 {
		t.Fatalf("p50 = %d", got)
	}
	if got := TopPercentile(scores, 0.01); got != 0 {
		t.Fatalf("p1 = %d", got)
	}
	if got := TopPercentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}

func TestSynScoreDistributionIsSkewed(t *testing.T) {
	// The Syn stand-in exists to give a power-law score distribution:
	// the top percentile must dwarf the median.
	ds := data.GenPowerLaw(data.PowerLawConfig{
		N: 1500, M: 8, Alpha: 1.6, Clusters: 60, FieldSize: 1500, HubStd: 12, Seed: 45,
	})
	eng, _ := NewEngine(ds, Options{})
	scores, err := eng.AllScores(6)
	if err != nil {
		t.Fatal(err)
	}
	p50 := TopPercentile(scores, 0.5)
	p99 := TopPercentile(scores, 0.99)
	if p99 < 4*(p50+1) {
		t.Fatalf("distribution not skewed: p50=%d p99=%d", p50, p99)
	}
}

func TestExplain(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 40, M: 5, FieldSize: 60, Spread: 6, Seed: 46})
	eng, _ := NewEngine(ds, Options{})
	res, _ := eng.Run(6)
	out := res.Explain(ds.N())
	for _, want := range []string{"answer:", "grid mapping:", "pruning:", "verification:", "total:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Labeled runs mention the labels.
	store := labelstore.NewStore()
	leng, _ := NewEngine(ds, Options{Labels: store})
	leng.Run(6)
	res2, _ := leng.Run(6)
	if !strings.Contains(res2.Explain(ds.N()), "labels: reused") {
		t.Error("labeled Explain missing label line")
	}
}
