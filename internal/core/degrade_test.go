package core

import (
	"context"
	"testing"
)

// checkStatsSane asserts the PhaseStats of a (possibly interrupted)
// run are internally consistent: no negative durations or counters, no
// phase recorded without its predecessors having been timed.
func checkStatsSane(t *testing.T, st PhaseStats, n int) {
	t.Helper()
	if st.LabelInput < 0 || st.GridMapping < 0 || st.LowerBounding < 0 ||
		st.UpperBounding < 0 || st.Verification < 0 {
		t.Fatalf("negative phase duration: %+v", st)
	}
	if st.Total() < st.Verification {
		t.Fatalf("Total() %v < Verification %v: a phase was double-counted", st.Total(), st.Verification)
	}
	if st.Candidates < 0 || st.Candidates > n {
		t.Fatalf("Candidates = %d with n = %d", st.Candidates, n)
	}
	if st.Verified < 0 || st.Verified > st.Candidates {
		t.Fatalf("Verified = %d > Candidates = %d", st.Verified, st.Candidates)
	}
	if st.DistanceComps < 0 || st.AdjComputed < 0 {
		t.Fatalf("negative work counters: %+v", st)
	}
}

// TestDegradedIntervalSweep runs the degraded entry point under every
// poll budget from "dies in grid mapping" to "completes untouched" and
// checks the contract at each: either a plain context.Canceled, or a
// degraded answer whose interval contains the returned object's true
// score, or the exact reference answer.
func TestDegradedIntervalSweep(t *testing.T) {
	const r = 8
	ds := denseUniform(900, 6)
	e, err := NewEngine(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Run(r)
	if err != nil {
		t.Fatal(err)
	}

	var sawErr, sawDegraded, sawExact bool
	// 1..120 walks the trip point through grid mapping, the bounding
	// phases and early verification; the huge budget never trips, so the
	// degraded entry point must return the exact answer.
	budgets := make([]int64, 0, 121)
	for b := int64(1); b <= 120; b++ {
		budgets = append(budgets, b)
	}
	budgets = append(budgets, 1<<30)
	for _, budget := range budgets {
		ctx := newPollCtx(budget)
		res, err := e.RunTopKDegradedContext(ctx, r, 1)
		switch {
		case err != nil:
			if err != context.Canceled {
				t.Fatalf("budget %d: err = %v, want context.Canceled or nil", budget, err)
			}
			if res != nil {
				t.Fatalf("budget %d: non-nil result alongside error", budget)
			}
			sawErr = true
		case res.Degraded:
			sawDegraded = true
			if res.Interval == nil {
				t.Fatalf("budget %d: degraded result without interval", budget)
			}
			lb, ub := res.Interval.LB, res.Interval.UB
			if lb > ub || lb < 0 || ub > ds.N()-1 {
				t.Fatalf("budget %d: malformed interval [%d, %d]", budget, lb, ub)
			}
			if res.Best.Score != lb {
				t.Fatalf("budget %d: Best.Score %d != Interval.LB %d", budget, res.Best.Score, lb)
			}
			if len(res.TopK) != 1 || res.TopK[0] != res.Best {
				t.Fatalf("budget %d: degraded TopK %v inconsistent with Best %v", budget, res.TopK, res.Best)
			}
			set, err := e.InteractingSet(r, res.Best.Obj)
			if err != nil {
				t.Fatal(err)
			}
			if truth := len(set); truth < lb || truth > ub {
				t.Fatalf("budget %d: object %d true score %d outside certified interval [%d, %d]",
					budget, res.Best.Obj, truth, lb, ub)
			}
			// The degraded answer can never beat the true optimum.
			if lb > ref.Best.Score {
				t.Fatalf("budget %d: certified LB %d exceeds true optimum %d", budget, lb, ref.Best.Score)
			}
			checkStatsSane(t, res.Stats, ds.N())
		default:
			sawExact = true
			if res.Best != ref.Best {
				t.Fatalf("budget %d: completed run returned %+v, reference %+v", budget, res.Best, ref.Best)
			}
			if res.Interval != nil {
				t.Fatalf("budget %d: exact result carries an interval", budget)
			}
			checkStatsSane(t, res.Stats, ds.N())
		}
	}
	if !sawErr || !sawDegraded || !sawExact {
		t.Fatalf("sweep did not exercise all outcomes: err=%v degraded=%v exact=%v",
			sawErr, sawDegraded, sawExact)
	}
}

// TestDegradedParallelWorkers repeats the interval check with the §IV
// parallel phases, whose completion flags follow a different path
// (parallel passes never break mid-phase).
func TestDegradedParallelWorkers(t *testing.T) {
	const r = 8
	ds := denseUniform(600, 6)
	e, err := NewEngine(ds, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	for budget := int64(1); budget <= 150; budget += 3 {
		ctx := newPollCtx(budget)
		res, err := e.RunTopKDegradedContext(ctx, r, 1)
		if err != nil {
			if err != context.Canceled {
				t.Fatalf("budget %d: err = %v", budget, err)
			}
			continue
		}
		if !res.Degraded {
			if res.Best != ref.Best {
				t.Fatalf("budget %d: completed run returned %+v, reference %+v", budget, res.Best, ref.Best)
			}
			continue
		}
		sawDegraded = true
		set, err := e.InteractingSet(r, res.Best.Obj)
		if err != nil {
			t.Fatal(err)
		}
		if truth := len(set); truth < res.Interval.LB || truth > res.Interval.UB {
			t.Fatalf("budget %d: true score %d outside [%d, %d]",
				budget, truth, res.Interval.LB, res.Interval.UB)
		}
	}
	if !sawDegraded {
		t.Skip("no budget produced a degraded parallel answer; poll cadence changed")
	}
}

// TestDegradedRequiresOptIn checks that the plain context entry point
// never degrades: the same budgets that produce degraded answers above
// must surface context.Canceled through RunTopKContext.
func TestDegradedRequiresOptIn(t *testing.T) {
	ds := denseUniform(900, 6)
	e, err := NewEngine(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for budget := int64(1); budget <= 120; budget += 7 {
		ctx := newPollCtx(budget)
		res, err := e.RunTopKContext(ctx, 8, 1)
		if err == nil {
			continue // completed before tripping; fine
		}
		if err != context.Canceled || res != nil {
			t.Fatalf("budget %d: (%v, %v), want (nil, context.Canceled)", budget, res, err)
		}
	}
}

// TestCancelDoesNotPoisonEngine interleaves cancelled, degraded and
// full runs on one engine and requires every completed run to agree
// with the reference: an interrupted query must leave no state behind
// that changes later answers.
func TestCancelDoesNotPoisonEngine(t *testing.T) {
	const r = 8
	ds := denseUniform(900, 6)
	e, err := NewEngine(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 2, 5, 10, 20, 40, 80} {
		if _, err := e.RunTopKContext(newPollCtx(budget), r, 1); err != nil && err != context.Canceled {
			t.Fatalf("budget %d: unexpected error %v", budget, err)
		}
		if _, err := e.RunTopKDegradedContext(newPollCtx(budget), r, 1); err != nil && err != context.Canceled {
			t.Fatalf("budget %d (degraded): unexpected error %v", budget, err)
		}
		res, err := e.Run(r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best != ref.Best {
			t.Fatalf("after interrupted runs with budget %d: Run = %+v, reference %+v",
				budget, res.Best, ref.Best)
		}
	}
}
