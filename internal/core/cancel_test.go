package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mio/internal/data"
)

// pollCtx is a context.Context that reports cancellation after its
// Done channel has been polled `limit` times. It makes cancellation
// tests deterministic: instead of racing a timer against the engine,
// the trip point is a fixed number of ctx checks, so the test can
// assert exactly how much work runs after the "cancel" without any
// wall-clock dependence. Polls are counted atomically because the
// parallel phases poll Done from several goroutines.
type pollCtx struct {
	limit int64
	polls atomic.Int64

	once sync.Once
	done chan struct{}
}

func newPollCtx(limit int64) *pollCtx {
	return &pollCtx{limit: limit, done: make(chan struct{})}
}

func (c *pollCtx) Done() <-chan struct{} {
	if c.polls.Add(1) >= c.limit {
		c.once.Do(func() { close(c.done) })
	}
	return c.done
}

func (c *pollCtx) Err() error {
	select {
	case <-c.done:
		return context.Canceled
	default:
		return nil
	}
}

func (c *pollCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *pollCtx) Value(any) any               { return nil }

// denseUniform returns a dataset dense enough at r=8 that most objects
// are candidates and verification dominates.
func denseUniform(n, m int) *data.Dataset {
	return data.GenUniform(data.UniformConfig{N: n, M: m, FieldSize: 60, Spread: 4, Seed: 42})
}

// TestCancelAbortsMidVerification checks that a context cancelled
// while verification is underway stops the phase after a bounded
// number of candidates rather than verifying the full candidate set.
func TestCancelAbortsMidVerification(t *testing.T) {
	ds := denseUniform(1500, 6)
	e, err := NewEngine(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// k = n disables Corollary 1 early termination, so an uncancelled
	// run verifies every candidate.
	full, err := e.RunTopK(8, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Verified < 100 {
		t.Fatalf("setup: only %d candidates verified; dataset not dense enough to test cancellation", full.Stats.Verified)
	}

	// Budget enough polls to get through grid mapping, lower- and
	// upper-bounding (a handful of checks each) plus a few verified
	// candidates, then trip.
	ctx := newPollCtx(40)
	q := newQuery(e, 8, ds.N())
	q.ctx = ctx
	res, err := q.run()
	if err != context.Canceled {
		t.Fatalf("cancelled run returned (%v, %v), want context.Canceled", res, err)
	}
	if q.stats.Verified >= full.Stats.Verified/2 {
		t.Errorf("cancelled run verified %d of %d candidates; cancellation did not abort mid-verification",
			q.stats.Verified, full.Stats.Verified)
	}
}

// TestCancelAbortsInsideExactScore checks the in-loop poll of
// exactScore: with few, point-heavy objects, cancellation must land
// inside one object's scoring loop, bounding the distance computations
// to a fraction of the full run's.
func TestCancelAbortsInsideExactScore(t *testing.T) {
	ds := denseUniform(30, 4000)
	e, err := NewEngine(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.RunTopK(8, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.DistanceComps < 10000 {
		t.Fatalf("setup: only %d distance comps in the full run; objects not heavy enough", full.Stats.DistanceComps)
	}

	// Trip shortly after verification starts: the first exact score
	// polls every 256 points, so the budget lands mid-object.
	ctx := newPollCtx(12)
	q := newQuery(e, 8, ds.N())
	q.ctx = ctx
	if _, err := q.run(); err != context.Canceled {
		t.Fatalf("cancelled run returned err=%v, want context.Canceled", err)
	}
	if q.stats.DistanceComps >= full.Stats.DistanceComps/4 {
		t.Errorf("cancelled run performed %d of %d distance comps; the exact-score loop ignored ctx",
			q.stats.DistanceComps, full.Stats.DistanceComps)
	}
}

// TestCancelAbortsParallelVerification covers the per-worker poll in
// parallelExactScore.
func TestCancelAbortsParallelVerification(t *testing.T) {
	ds := denseUniform(30, 4000)
	e, err := NewEngine(ds, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.RunTopK(8, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	ctx := newPollCtx(25)
	q := newQuery(e, 8, ds.N())
	q.ctx = ctx
	if _, err := q.run(); err != context.Canceled {
		t.Fatalf("cancelled parallel run returned err=%v, want context.Canceled", err)
	}
	if q.stats.DistanceComps >= full.Stats.DistanceComps/4 {
		t.Errorf("cancelled parallel run performed %d of %d distance comps",
			q.stats.DistanceComps, full.Stats.DistanceComps)
	}
}

// TestCancelPromptWallClock is the black-box promptness check: cancel
// a running query after a few milliseconds and require the call to
// return well before the uncancelled runtime. Bounds are deliberately
// loose — the deterministic poll-counting tests above pin the exact
// behaviour; this one only guards against a phase that ignores ctx
// entirely.
func TestCancelPromptWallClock(t *testing.T) {
	ds := denseUniform(2500, 48)
	e, err := NewEngine(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if _, err := e.RunTopK(9, ds.N()); err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(t0)
	if fullDur < 30*time.Millisecond {
		t.Skipf("full run took only %v; too fast to observe mid-run cancellation", fullDur)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	t0 = time.Now()
	_, err = e.RunTopKContext(ctx, 9, ds.N())
	cancelledDur := time.Since(t0)
	if err != context.Canceled {
		t.Fatalf("cancelled run returned err=%v, want context.Canceled", err)
	}
	if cancelledDur > fullDur/2+50*time.Millisecond {
		t.Errorf("cancelled run took %v (full run %v); cancellation is not prompt", cancelledDur, fullDur)
	}
}

// TestContextVariantsCancelled checks that the analysis entry points
// honour an already-cancelled context.
func TestContextVariantsCancelled(t *testing.T) {
	ds := denseUniform(200, 8)
	e, err := NewEngine(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AllScoresContext(ctx, 4); err != context.Canceled {
		t.Errorf("AllScoresContext: err=%v, want context.Canceled", err)
	}
	if _, err := e.InteractingSetContext(ctx, 4, 0); err != context.Canceled {
		t.Errorf("InteractingSetContext: err=%v, want context.Canceled", err)
	}
	if _, err := e.SweepContext(ctx, []float64{2, 4}, 1); err != context.Canceled {
		t.Errorf("SweepContext: err=%v, want context.Canceled", err)
	}
}
