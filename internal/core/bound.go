package core

import (
	"context"
	"fmt"
	"time"

	"mio/internal/core/labelstore"
	"mio/internal/fault"
)

// This file implements the split-phase entry point used by the sharded
// scatter–gather coordinator (internal/shard): Bound runs the pipeline
// through upper-bounding and pauses, exposing the certified per-object
// [τ^low, τ^upp] vectors; Complete resumes with a verification
// threshold floor merged in from the other shards, so candidates whose
// upper bound cannot reach the global top-k are never verified.
//
// The restrict mask threads the border-replica discipline through the
// pipeline: a shard's dataset holds its primary objects plus halo
// replicas of neighbouring shards' objects, bounds are computed over
// all of them (a replica contributes to its neighbours' scores), but
// only primaries may be reported — so every object is answered by
// exactly one shard and cross-shard interactions are scored exactly
// once.

// BoundSet is a paused query whose label-input, grid-mapping,
// lower-bounding and upper-bounding phases have completed. It is tied
// to the engine that produced it (same single-query contract as the
// engine itself) and must be finished with Complete or dropped.
type BoundSet struct {
	q *query
	// threshold is the restricted k-th highest τ^low — the local
	// verification threshold before the coordinator's floor merges in.
	threshold int
}

// Bound runs the pipeline through upper-bounding and pauses. allowed,
// when non-nil, must have one entry per object; only objects with a
// set entry may appear in TopLBs or the completed answer. k is clamped
// to the number of allowed objects. Cancellation returns ctx.Err() —
// the caller owns degradation policy (it still holds the bounds of
// every shard that did answer).
func (e *Engine) Bound(ctx context.Context, r float64, k int, allowed []bool) (*BoundSet, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: distance threshold must be positive, got %g", r)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be at least 1, got %d", k)
	}
	n := e.ds.N()
	if allowed != nil && len(allowed) != n {
		return nil, fmt.Errorf("core: restrict mask has %d entries for %d objects", len(allowed), n)
	}
	if max := countAllowed(allowed, n); k > max {
		k = max
	}
	if k == 0 {
		return nil, fmt.Errorf("core: restrict mask allows no objects")
	}
	q := newQuery(e, r, k)
	q.ctx = ctx
	q.restrict = allowed

	if err := q.fire(fault.PointLabelInput); err != nil {
		return nil, err
	}
	if store := e.opts.Labels; store != nil {
		t0 := time.Now()
		if l, ok := store.Get(q.ceilR()); ok {
			q.labels = l
			q.stats.UsedLabels = true
			q.stats.LabelBytes = l.SizeBytes()
		} else if !e.opts.DisableCollect {
			counts := make([]int, q.n)
			for i := range e.ds.Objects {
				counts[i] = len(e.ds.Objects[i].Pts)
			}
			q.newLabels = labelstore.NewLabels(counts)
		}
		q.stats.LabelInput = time.Since(t0)
	}

	if err := q.fire(fault.PointGridMapping); err != nil {
		return nil, err
	}
	t0 := time.Now()
	q.gridMapping()
	q.stats.GridMapping = time.Since(t0)
	q.stats.SmallCells = q.idx.small.Len()
	q.stats.LargeCells = q.idx.large.Len()
	if q.cancelled() {
		return nil, q.ctx.Err()
	}

	if err := q.fire(fault.PointLowerBounding); err != nil {
		return nil, err
	}
	t0 = time.Now()
	threshold := q.lowerBounding()
	q.stats.LowerBounding = time.Since(t0)
	if q.cancelled() {
		return nil, q.ctx.Err()
	}

	if err := q.fire(fault.PointUpperBounding); err != nil {
		return nil, err
	}
	t0 = time.Now()
	q.computeUpperBounds()
	q.stats.UpperBounding = time.Since(t0)
	if q.cancelled() {
		return nil, q.ctx.Err()
	}
	return &BoundSet{q: q, threshold: threshold}, nil
}

// countAllowed returns the number of reportable objects.
func countAllowed(allowed []bool, n int) int {
	if allowed == nil {
		return n
	}
	c := 0
	for _, a := range allowed {
		if a {
			c++
		}
	}
	return c
}

// TopLBs returns the k highest certified lower bounds among allowed
// objects in canonical order (bound descending, object ascending).
// Each entry's true score is ≥ its Score (Lemma 1), which is what
// makes the merged k-th highest a sound global verification floor.
func (b *BoundSet) TopLBs() []Scored {
	q := b.q
	top := make([]Scored, 0, q.k)
	for i := 0; i < q.n; i++ {
		if q.allowed(i) {
			top = insertTopK(top, Scored{Obj: i, Score: int(q.tauLow[i])}, q.k)
		}
	}
	return top
}

// MaxUB returns the highest certified upper bound among allowed
// objects: no object this shard may report can score above it
// (Lemma 2). The coordinator prunes the whole shard when MaxUB falls
// below the merged floor.
func (b *BoundSet) MaxUB() int {
	q := b.q
	best := 0
	for i := 0; i < q.n; i++ {
		if q.allowed(i) && int(q.tauUpp[i]) > best {
			best = int(q.tauUpp[i])
		}
	}
	return best
}

// Stats exposes the bound-phase work done so far. The coordinator
// charges it to the query even when the shard is pruned before
// verification — the grid was still built and the bounds still
// computed.
func (b *BoundSet) Stats() PhaseStats { return b.q.stats }

// Complete resumes the paused query: candidates are assembled against
// max(local threshold, floor), verified best-first with the Corollary 1
// cut, and the result finalised exactly as a solo run would — collected
// labels are published as a side effect. floor must be a sound global
// threshold (at least k objects anywhere score ≥ floor); raising the
// threshold never changes the answer for objects that belong in the
// global top-k, it only skips verifying locals that provably do not.
func (b *BoundSet) Complete(ctx context.Context, floor int) (*Result, error) {
	q := b.q
	q.ctx = ctx
	threshold := b.threshold
	if floor > threshold {
		threshold = floor
	}
	cand := q.assembleCandidates(threshold)
	q.stats.Candidates = len(cand)
	if q.cancelled() {
		return nil, q.ctx.Err()
	}
	if err := q.fire(fault.PointVerification); err != nil {
		return nil, err
	}
	t0 := time.Now()
	topk := q.verification(cand)
	q.stats.Verification = time.Since(t0)
	if q.cancelled() {
		return nil, q.ctx.Err()
	}
	q.finishGridStats()
	if q.newLabels != nil {
		if err := q.e.opts.Labels.Put(q.ceilR(), q.newLabels); err != nil {
			q.stats.LabelPersistFailed = true
		}
	}
	res := &Result{TopK: topk, Stats: q.stats}
	if len(topk) > 0 {
		res.Best = topk[0]
	}
	return res, nil
}
