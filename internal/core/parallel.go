package core

import (
	"math/bits"

	"mio/internal/bitmap"
	"mio/internal/core/labelstore"
	"mio/internal/grid"
	"mio/internal/parallel"
)

// This file implements §IV — parallel MIO query processing. Every phase
// follows the paper's local-bitset design: each worker owns private
// scratch bitsets and counters, so no synchronization happens inside
// the loops; results are merged after each barrier.

// parallelGridMapping implements PARALLEL-GRID-MAPPING(O, r). Workers
// build partial BIGrids over contiguous, point-count-balanced object
// ranges (keeping the monotone object order the compressed bitsets
// rely on), and the partial grids are merged. Key lists are derived
// from the merged small-grid: o_i.L = {K : i ∈ b(c_K), |b(c_K)| ≥ 2},
// which is exactly the invariant Algorithm 3 maintains incrementally.
func (q *query) parallelGridMapping() {
	t := q.e.opts.workers()
	weights := make([]int, q.n)
	for i := range q.e.ds.Objects {
		weights[i] = len(q.e.ds.Objects[i].Pts)
	}
	ranges := parallel.Ranges(weights, t)
	parts := make([]*bigrid, len(ranges))
	parallel.Run(len(ranges), func(w int) {
		parts[w] = q.buildRange(ranges[w][0], ranges[w][1])
	})

	base := parts[0]
	for _, p := range parts[1:] {
		base.small.MergeFrom(p.small)
		base.large.MergeFrom(p.large)
		for i, gs := range p.groups {
			if len(gs) > 0 {
				base.groups[i] = gs
			}
		}
	}
	base.keyLists = deriveKeyLists(base.small, q.n)
	q.idx = base
}

// parallelLowerBounding implements PARALLEL-LOWER-BOUNDING(O, r) with
// either of the two §IV strategies.
func (q *query) parallelLowerBounding() {
	t := q.e.opts.workers()
	switch q.e.opts.LB {
	case LBHashP:
		// Divide each object's key list across cores; local bitsets
		// avoid synchronization on b(o_i) and are merged per object.
		locals := make([]*bitmap.Scratch, t)
		for w := range locals {
			locals[w] = bitmap.NewScratch(q.n)
		}
		for i := 0; i < q.n; i++ {
			keys := q.idx.keyLists[i]
			if len(keys) == 0 {
				q.tauLow[i] = 0
				continue
			}
			parallel.Run(t, func(w int) {
				locals[w].Reset()
				for j := w; j < len(keys); j += t {
					locals[w].OrCompressed(q.idx.small.Cell(keys[j]).B)
				}
			})
			for w := 1; w < t; w++ {
				locals[0].OrScratch(locals[w])
			}
			q.tauLow[i] = int32(locals[0].Cardinality() - 1)
			if q.lbBits != nil {
				q.lbBits[i] = locals[0].ToCompressed()
			}
		}
	default: // LBGreedyD
		// Divide O across cores with the greedy multiway partition on
		// key-list sizes; no synchronization at all.
		weights := make([]int, q.n)
		for i := range weights {
			weights[i] = len(q.idx.keyLists[i])
		}
		buckets := parallel.Greedy(weights, t)
		parallel.Run(t, func(w int) {
			scratch := bitmap.NewScratch(q.n)
			for _, i := range buckets[w] {
				q.lowerBoundObject(i, scratch)
			}
		})
	}
}

// parallelUpperBounding implements PARALLEL-UPPER-BOUNDING with either
// the cost-based point-group partition (UB-greedy-p) or the object
// partition strawman (UB-greedy-d).
func (q *query) parallelUpperBounding() {
	t := q.e.opts.workers()
	ctrs := make([]ctrSet, t)
	switch q.e.opts.UB {
	case UBGreedyD:
		// Greedy partition of O by |P_i|, ignoring the per-point cost
		// differences — the paper's competitor, kept for Fig. 8.
		weights := make([]int, q.n)
		for i := range q.e.ds.Objects {
			weights[i] = len(q.e.ds.Objects[i].Pts)
		}
		buckets := parallel.Greedy(weights, t)
		parallel.Run(t, func(w int) {
			scratch := bitmap.NewScratch(q.n)
			for _, i := range buckets[w] {
				q.upperBoundObject(i, scratch, &ctrs[w])
			}
		})
	default: // UBGreedyP
		// Cost model of Eq. (3): a group whose cell lacks b^adj costs a
		// 27-cell union; one whose cell has it costs a single OR. The
		// labeling term |P_{i,K}| is omitted when labels are in use.
		locals := make([]*bitmap.Scratch, t)
		for w := range locals {
			locals[w] = bitmap.NewScratch(q.n)
		}
		var replay *bitmap.Scratch
		if q.newLabels != nil {
			replay = bitmap.NewScratch(q.n)
		}
		costs := make([]int, 0, 64)
		active := make([]int, 0, 64)
		for i := 0; i < q.n; i++ {
			costs = costs[:0]
			active = active[:0]
			for gi, g := range q.idx.groups[i] {
				if q.labels != nil && !q.groupActiveUpper(i, g) {
					continue
				}
				cost := 1 // Cost(b): one bitwise OR
				if q.idx.large.Cell(g.key).Adj() == nil {
					cost = 27
				}
				if q.labels == nil {
					cost += len(g.pts) // per-point labeling cost
				}
				active = append(active, gi)
				costs = append(costs, cost)
			}
			if len(active) == 0 {
				q.tauUpp[i] = 0
				continue
			}
			buckets := parallel.Greedy(costs, t)
			parallel.Run(t, func(w int) {
				locals[w].Reset()
				for _, ai := range buckets[w] {
					// label2=false: each worker's bucket order differs
					// from the serial group order, so the prefix-dependent
					// Labeling-2 decision is replayed serially below.
					q.orGroupAdj(i, q.idx.groups[i][active[ai]], locals[w], &ctrs[w], false)
				}
			})
			for w := 1; w < t; w++ {
				locals[0].OrScratch(locals[w])
			}
			tau := locals[0].Cardinality() - 1
			if tau < 0 {
				tau = 0
			}
			q.tauUpp[i] = int32(tau)
			if replay != nil {
				q.labelUpperReplay(i, replay)
			}
		}
	}
	q.addCounters(ctrs)
}

// parallelExactScore implements PARALLEL-VERIFICATION's per-candidate
// work with an object partition: worker w owns the candidate objects
// {j : j mod t == w}. Every worker walks the full label-filtered point
// sequence in index order — the same order the serial scan uses — but
// keeps its per-cell candidate mask intersected with its share, so it
// probes only the objects it owns.
//
// The partition is what makes tuning answer-invariant (DESIGN.md §16):
// whether object j is probed at point p depends only on j's own
// found-state (a pure function of the point order, the grid, r, and
// the seed bitset), never on what other workers have found. Summing
// the per-worker counters therefore reproduces the serial
// DistanceComps bit for bit at every worker count — unlike a
// point-split, where each worker's private b(o_i) re-probes objects
// the others already resolved and the count grows with t.
func (q *query) parallelExactScore(i int) int {
	t := q.e.opts.workers()
	if q.vBOi == nil {
		q.vBOi = make([]*bitmap.Scratch, t)
		q.vMask = make([]*bitmap.Scratch, t)
		q.vShare = make([]*bitmap.Scratch, t)
		for w := 0; w < t; w++ {
			q.vBOi[w] = bitmap.NewScratch(q.n)
			q.vMask[w] = bitmap.NewScratch(q.n)
			q.vShare[w] = bitmap.NewScratch(q.n)
			for j := w; j < q.n; j += t {
				q.vShare[w].Set(j)
			}
		}
	}
	obj := &q.e.ds.Objects[i]

	// Label-filtered point sequence, shared by every worker. Walking
	// points in index order keeps each worker's same-cell mask reuse
	// (scoreState) aligned with the serial scan.
	pts := q.vPts[:0]
	for j := range obj.Pts {
		if q.labels != nil {
			l := q.labels.Get(i, j)
			if l&labelstore.BitMapped == 0 || l&labelstore.BitVerify == 0 {
				continue
			}
		}
		pts = append(pts, int32(j))
	}
	q.vPts = pts

	// When collecting labels, each worker records per-point share-empty
	// bits instead of clearing label bits directly (see scoreState).
	var empty [][]uint64
	if q.newLabels != nil {
		empty = make([][]uint64, t)
		nw := (len(obj.Pts) + 63) / 64
		for w := range empty {
			empty[w] = make([]uint64, nw)
		}
	}

	ctrs := make([]ctrSet, t)
	parallel.Run(t, func(w int) {
		bOi := q.vBOi[w]
		mask := q.vMask[w]
		bOi.Reset()
		bOi.Set(i)
		if q.lbBits != nil && q.lbBits[i] != nil {
			bOi.OrCompressed(q.lbBits[i])
		}
		var neigh [27]grid.Key
		st := scoreState{share: q.vShare[w]}
		if empty != nil {
			st.emptyAt = empty[w]
		}
		for pi, pt := range pts {
			// Same mid-object cancellation polling as exactScore; each
			// worker polls independently so abort stays prompt on every
			// core. ctx.Done() is safe to poll concurrently.
			if pi&255 == 255 && q.cancelled() {
				break
			}
			q.scorePoint(i, int(pt), obj.Pts[pt], bOi, mask, neigh[:0], &ctrs[w], &st)
		}
	})
	for w := 1; w < t; w++ {
		q.vBOi[0].OrScratch(q.vBOi[w])
	}
	if empty != nil {
		// A point is skippable for future ⌈r⌉ runs iff every worker's
		// share of its mask emptied — the conjunction is exactly the
		// serial full-mask condition, so collected label stores are
		// identical at every worker count. A worker that broke early on
		// cancellation leaves its unprocessed bits zero, which can only
		// suppress clears, never fabricate one.
		for wi := range empty[0] {
			m := empty[0][wi]
			for w := 1; w < t; w++ {
				m &= empty[w][wi]
			}
			for m != 0 {
				b := bits.TrailingZeros64(m)
				q.newLabels.ClearBit(i, wi<<6+b, labelstore.BitVerify)
				m &= m - 1
			}
		}
	}
	q.addCounters(ctrs)
	return q.vBOi[0].Cardinality() - 1
}
