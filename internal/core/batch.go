package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mio/internal/core/labelstore"
	"mio/internal/fault"
	"mio/internal/grid"
	"mio/internal/parallel"
)

// This file implements the engine's multi-query entry point used by
// the cell-major batch executor (internal/batch): one shared pass over
// the dataset serves a whole group of queries with equal ⌈r⌉.
//
// The grouping algebra that makes sharing sound:
//
//   - The large grid, its adjacency bitsets, the labels, and with them
//     the whole upper-bounding phase depend only on ⌈r⌉
//     (grid.LargeWidth rounds up), so one build + one τ^upp pass
//     serves every member.
//   - The small grid and lower bounding depend on the exact r
//     (grid.SmallWidth divides by √dims), so the group keeps one
//     "r-plan" per distinct threshold, all sharing the large grid.
//   - Verification depends on (r, k); members with equal (r, k) share
//     one plan and receive the same *Result.
//
// Per-member results are bitwise-identical to the query-major path —
// including the DistanceComps and AdjComputed counters — because every
// stage either reuses the solo code verbatim on shared inputs, or
// (AdjComputed on the shared grid) replays per-query what a private
// grid would have charged; see query.noteAdj.

// GroupSpec describes one member of a batch group. All members of one
// RunGroup call must share ⌈R⌉.
type GroupSpec struct {
	R       float64
	K       int
	Degrade bool // degraded answer instead of ctx.Err() on expiry
	// Ctx is the member's own cancellation; nil means background. A
	// member whose context expires detaches from the group without
	// stalling it.
	Ctx context.Context
}

// GroupOutcome is the per-member answer: exactly one of Result and Err
// is meaningful, mirroring the (Result, error) pair of RunTopKContext.
type GroupOutcome struct {
	Result *Result
	Err    error
}

// GroupReport summarises the sharing a group run achieved.
type GroupReport struct {
	// Members is the group size; Plans counts the distinct (r, k)
	// verification pipelines executed; RVariants the distinct exact
	// thresholds (lower-bounding passes).
	Members   int `json:"members"`
	Plans     int `json:"plans"`
	RVariants int `json:"r_variants"`
	// CellsWalked counts the cells frozen by the shared cell walk;
	// CellsDeduped counts the per-plan candidate-cell visits the walk
	// collapsed (Σ per-plan touched cells − their union).
	CellsWalked  int `json:"cells_walked"`
	CellsDeduped int `json:"cells_deduped"`
}

// RunGroup processes specs as one shared-⌈r⌉ batch group. ctx bounds
// the whole group (the epoch deadline); each spec's own context only
// detaches that member. The returned slice is parallel to specs.
//
// Exact results are bitwise-identical to running each spec through
// RunTopKContext alone, except for wall-clock durations and the index
// byte sizes (shared structures amortise differently). Members whose
// context expires mid-group get the same treatment the solo path gives
// them: ctx.Err(), or a certified degraded answer when Degrade is set
// and the completed phases can certify one.
func (e *Engine) RunGroup(ctx context.Context, specs []GroupSpec) ([]GroupOutcome, GroupReport) {
	g := &groupRun{
		e:     e,
		ctx:   ctx,
		specs: make([]GroupSpec, len(specs)),
		n:     e.ds.N(),
		outs:  make([]GroupOutcome, len(specs)),
		done:  make([]bool, len(specs)),
		dead:  make([]bool, len(specs)),
	}
	copy(g.specs, specs)
	g.rep.Members = len(specs)
	if len(specs) == 0 {
		return g.outs, g.rep
	}
	// Spec validation happens before the live count exists, so rejects
	// set the outcome directly instead of going through fail().
	reject := func(i int, err error) {
		g.outs[i] = GroupOutcome{Err: err}
		g.done[i] = true
		g.dead[i] = true
	}
	for i := range g.specs {
		sp := &g.specs[i]
		switch {
		case sp.R <= 0:
			reject(i, fmt.Errorf("core: distance threshold must be positive, got %g", sp.R))
			continue
		case sp.K < 1:
			reject(i, fmt.Errorf("core: k must be at least 1, got %d", sp.K))
			continue
		}
		if sp.K > g.n {
			sp.K = g.n
		}
		ceil := int(math.Ceil(sp.R))
		if g.ceil == 0 {
			g.ceil = ceil
		} else if ceil != g.ceil {
			reject(i, fmt.Errorf("core: group member ⌈r⌉=%d does not match the group's ⌈r⌉=%d", ceil, g.ceil))
			continue
		}
		g.live++
	}
	if g.live > 0 {
		g.run()
	}
	return g.outs, g.rep
}

// rPlan carries the exact-r state shared by every member with the same
// threshold: the small grid, key lists, and the lower-bounding pass.
// Its query q is the carrier for that state so the solo lowerBounding
// code runs unchanged.
type rPlan struct {
	r       float64
	members []int
	q       *query
	lbDur   time.Duration
	failed  bool // phase fault consumed this r-plan's members
}

// plan is one distinct (r, k) verification pipeline. Members with
// equal (r, k) share the plan and its Result pointer, the in-group
// analogue of request coalescing.
type plan struct {
	r       float64
	k       int
	rp      *rPlan
	members []int
	qp      *query
	cand    []candidate
	top     []Scored
	verDur  time.Duration
	ranFull bool // verification ran to completion (no cancel, no fault)
	result  *Result
}

type planKey struct {
	r float64
	k int
}

// groupRun orchestrates one shared-⌈r⌉ group through the Algorithm 2
// phase framework.
type groupRun struct {
	e     *Engine
	ctx   context.Context
	specs []GroupSpec
	n     int
	ceil  int

	// mu guards dead/live/done. Parallel verification workers poll
	// member liveness concurrently.
	mu   sync.Mutex
	dead []bool
	live int
	done []bool
	// deadAtStart marks members whose context was already expired when
	// the group began: the solo path returns ctx.Err() for those
	// before any bound exists, so the group must too.
	deadAtStart []bool

	labels    *labelstore.Labels
	newLabels *labelstore.Labels
	labelDur  time.Duration

	large   *grid.LargeGrid
	groups  [][]pointGroup
	gmBroke bool
	gridDur time.Duration

	rPlans     []*rPlan
	plans      []*plan
	memberPlan []*plan

	ubDur     time.Duration
	tauUpp    []int32
	ubDone    bool
	adjShared int // AdjComputed by the shared upper-bounding pass
	adjBase   map[grid.Key]struct{}

	walkDur       time.Duration
	persistFailed bool

	outs []GroupOutcome
	rep  GroupReport
}

// fail delivers a terminal error to member i and removes it from the
// live set.
func (g *groupRun) fail(i int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.done[i] {
		return
	}
	g.outs[i] = GroupOutcome{Err: err}
	g.done[i] = true
	if !g.dead[i] {
		g.dead[i] = true
		g.live--
	}
}

func (g *groupRun) failMembers(members []int, err error) {
	for _, i := range members {
		g.fail(i, err)
	}
}

func (g *groupRun) failAllLive(err error) {
	for i := range g.specs {
		g.mu.Lock()
		doneOrDead := g.done[i]
		g.mu.Unlock()
		if !doneOrDead {
			g.fail(i, err)
		}
	}
}

// sweepDead refreshes the liveness of every member and returns the
// live count. Called from cancellation polls, possibly concurrently.
func (g *groupRun) sweepDead() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.specs {
		if g.dead[i] {
			continue
		}
		if c := g.specs[i].Ctx; c != nil && c.Err() != nil {
			g.dead[i] = true
			g.live--
		}
	}
	return g.live
}

// aborted reports whether the whole group should stop: the epoch
// context expired, or no member is still waiting for work.
func (g *groupRun) aborted() bool {
	if g.ctx != nil && g.ctx.Err() != nil {
		return true
	}
	return g.sweepDead() == 0
}

// membersAllDead reports whether every listed member has detached.
func (g *groupRun) membersAllDead(members []int) bool {
	g.sweepDead()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, i := range members {
		if !g.dead[i] {
			return false
		}
	}
	return true
}

// errFor returns the context error a detached member should see.
func (g *groupRun) errFor(i int) error {
	if c := g.specs[i].Ctx; c != nil && c.Err() != nil {
		return c.Err()
	}
	if g.ctx != nil && g.ctx.Err() != nil {
		return g.ctx.Err()
	}
	return context.Canceled
}

func (g *groupRun) fire(point string) error {
	return g.e.opts.Faults.Fire(point)
}

// run executes the Algorithm 2 framework once for the whole group.
func (g *groupRun) run() {
	if err := g.fire(fault.PointGroupBuild); err != nil {
		g.failAllLive(err)
		return
	}

	// Record which members were dead on arrival: they get ctx.Err()
	// like a solo query whose context expired before lower bounding.
	g.sweepDead()
	g.mu.Lock()
	g.deadAtStart = append([]bool(nil), g.dead...)
	g.mu.Unlock()

	g.setupPlans()

	// Label input (§III-D), once per group: every member shares ⌈r⌉,
	// the label key.
	if err := g.fire(fault.PointLabelInput); err != nil {
		g.failAllLive(err)
		return
	}
	if store := g.e.opts.Labels; store != nil {
		t0 := time.Now()
		if l, ok := store.Get(g.ceil); ok {
			g.labels = l
		} else if !g.e.opts.DisableCollect {
			counts := make([]int, g.n)
			for i := range g.e.ds.Objects {
				counts[i] = len(g.e.ds.Objects[i].Pts)
			}
			g.newLabels = labelstore.NewLabels(counts)
		}
		g.labelDur = time.Since(t0)
	}

	// Grid mapping: one pass over the objects fills the shared large
	// grid and one small grid per distinct exact r.
	if err := g.fire(fault.PointGridMapping); err != nil {
		g.failAllLive(err)
		return
	}
	t0 := time.Now()
	g.buildIndex()
	g.gridDur = time.Since(t0)
	if g.gmBroke || g.aborted() {
		g.assemble()
		return
	}

	// Lower bounding, once per distinct exact r.
	for _, rp := range g.rPlans {
		if g.aborted() {
			g.assemble()
			return
		}
		if g.membersAllDead(rp.members) {
			continue
		}
		if err := g.fire(fault.PointLowerBounding); err != nil {
			g.failMembers(rp.members, err)
			rp.failed = true
			continue
		}
		t0 = time.Now()
		rp.q.lowerBounding()
		rp.lbDur = time.Since(t0)
	}

	// Upper bounding, once for the whole group: τ^upp depends only on
	// the shared large grid and labels.
	if g.aborted() {
		g.assemble()
		return
	}
	if err := g.fire(fault.PointUpperBounding); err != nil {
		g.failAllLive(err)
		return
	}
	// The τ^upp carrier gets a group-scoped cancel check: the pass
	// serves every member, so it must not stop when the first r-plan's
	// members happen to detach.
	qU := newQuery(g.e, g.rPlans[0].r, 1)
	qU.idx = g.rPlans[0].q.idx
	qU.labels = g.labels
	qU.newLabels = g.newLabels
	qU.cancelCheck = func() bool { return g.aborted() }
	t0 = time.Now()
	qU.computeUpperBounds()
	g.ubDur = time.Since(t0)
	g.tauUpp = qU.tauUpp
	g.ubDone = qU.ubDone
	g.adjShared = qU.stats.AdjComputed
	// Snapshot the cells holding b^adj after the shared pass: the
	// baseline for per-plan AdjComputed replay (query.noteAdj).
	g.adjBase = make(map[grid.Key]struct{})
	g.large.ForEach(func(k grid.Key, c *grid.LargeCell) {
		if c.Adj() != nil {
			g.adjBase[k] = struct{}{}
		}
	})

	g.buildPlanQueries()

	// Shared cell walk: freeze the union of every plan's candidate
	// cells exactly once, balanced across the worker pool by posting
	// size (the Eq. 3 cost currency).
	if g.aborted() {
		g.assemble()
		return
	}
	if err := g.fire(fault.PointCellWalk); err != nil {
		g.failAllLive(err)
		return
	}
	t0 = time.Now()
	g.cellWalk()
	g.walkDur = time.Since(t0)

	// Verification, once per distinct (r, k).
	for _, pl := range g.plans {
		if g.aborted() {
			break
		}
		if pl.qp == nil || pl.rp.failed || !pl.rp.q.lbDone || g.membersAllDead(pl.members) {
			// Nobody needs the exact answer, or its inputs never
			// completed; degraded members assemble from the bound
			// vectors alone.
			continue
		}
		if err := g.fire(fault.PointVerification); err != nil {
			g.failMembers(pl.members, err)
			continue
		}
		t0 = time.Now()
		pl.top = pl.qp.verification(pl.cand)
		pl.verDur = time.Since(t0)
		pl.ranFull = !pl.qp.cancelled()
	}

	// Post-processing: publish collected labels iff every pipeline ran
	// to completion, so the published set is a deterministic function
	// of (dataset, ⌈r⌉) — the same invariant the solo path keeps by
	// not publishing after a cancellation.
	complete := !g.aborted() && g.ubDone
	for _, pl := range g.plans {
		if !pl.ranFull {
			complete = false
		}
	}
	if complete && g.newLabels != nil {
		if err := g.e.opts.Labels.Put(g.ceil, g.newLabels); err != nil {
			g.persistFailed = true
		}
	}

	g.assemble()
}

// setupPlans derives the r-plans (distinct exact r) and plans
// (distinct (r, k)) from the live members, in sorted order so phase
// sequencing is deterministic.
func (g *groupRun) setupPlans() {
	rIdx := map[float64]*rPlan{}
	pIdx := map[planKey]*plan{}
	g.memberPlan = make([]*plan, len(g.specs))
	for i := range g.specs {
		if g.done[i] {
			continue
		}
		sp := &g.specs[i]
		rp := rIdx[sp.R]
		if rp == nil {
			rp = &rPlan{r: sp.R}
			rIdx[sp.R] = rp
			g.rPlans = append(g.rPlans, rp)
		}
		rp.members = append(rp.members, i)
		pk := planKey{r: sp.R, k: sp.K}
		pl := pIdx[pk]
		if pl == nil {
			pl = &plan{r: sp.R, k: sp.K, rp: rp}
			pIdx[pk] = pl
			g.plans = append(g.plans, pl)
		}
		pl.members = append(pl.members, i)
		g.memberPlan[i] = pl
	}
	sort.Slice(g.rPlans, func(a, b int) bool { return g.rPlans[a].r < g.rPlans[b].r })
	sort.Slice(g.plans, func(a, b int) bool {
		if g.plans[a].r != g.plans[b].r {
			return g.plans[a].r < g.plans[b].r
		}
		return g.plans[a].k < g.plans[b].k
	})
	g.rep.RVariants = len(g.rPlans)
	g.rep.Plans = len(g.plans)

	for _, rp := range g.rPlans {
		rp := rp
		q := newQuery(g.e, rp.r, 1)
		q.cancelCheck = func() bool {
			return g.aborted() || g.membersAllDead(rp.members)
		}
		rp.q = q
	}
}

// groupPart is one worker's partial grids: the shared large grid plus
// one small grid per r-plan, same order as g.rPlans.
type groupPart struct {
	smalls []*grid.SmallGrid
	large  *grid.LargeGrid
}

func (g *groupRun) skipPoint(obj, pt int) bool {
	return g.labels != nil && g.labels.Get(obj, pt)&labelstore.BitMapped == 0
}

// buildIndex runs the shared grid-mapping pass: one sweep over the
// objects (parallelised over point-count-balanced ranges exactly like
// parallelGridMapping) populates every grid at once.
func (g *groupRun) buildIndex() {
	t := g.e.opts.workers()
	weights := make([]int, g.n)
	for i := range g.e.ds.Objects {
		weights[i] = len(g.e.ds.Objects[i].Pts)
	}
	ranges := parallel.Ranges(weights, t)
	parts := make([]*groupPart, len(ranges))
	var broke atomic.Bool
	parallel.Run(len(ranges), func(w int) {
		parts[w] = g.buildGroupRange(ranges[w][0], ranges[w][1], &broke)
	})

	base := parts[0]
	for _, p := range parts[1:] {
		base.large.MergeFrom(p.large)
		for si := range base.smalls {
			base.smalls[si].MergeFrom(p.smalls[si])
		}
	}
	g.large = base.large
	g.groups = make([][]pointGroup, g.n)
	deriveGroups(g.large, g.groups)
	for si, rp := range g.rPlans {
		small := base.smalls[si]
		rp.q.idx = &bigrid{
			small:    small,
			large:    g.large,
			keyLists: deriveKeyLists(small, g.n),
			groups:   g.groups,
		}
		rp.q.labels = g.labels
		rp.q.newLabels = g.newLabels
	}
	g.gmBroke = broke.Load()
}

// buildGroupRange mirrors query.buildRange over [lo, hi): the same
// object sweep, polling, and label filter, writing each point into
// every small grid plus the shared large grid.
func (g *groupRun) buildGroupRange(lo, hi int, broke *atomic.Bool) *groupPart {
	dims := g.e.opts.dims()
	p := &groupPart{
		smalls: make([]*grid.SmallGrid, len(g.rPlans)),
		large:  grid.NewLargeGrid(grid.LargeWidth(g.rPlans[0].r), g.n),
	}
	for si, rp := range g.rPlans {
		p.smalls[si] = grid.NewSmallGrid(grid.SmallWidth(rp.r, dims))
	}
	for i := lo; i < hi; i++ {
		if i&127 == 127 && g.aborted() {
			broke.Store(true)
			break
		}
		obj := &g.e.ds.Objects[i]
		for j, pt := range obj.Pts {
			if g.skipPoint(i, j) {
				continue
			}
			for _, sg := range p.smalls {
				sg.Add(i, pt)
			}
			p.large.Add(i, j, pt)
		}
	}
	return p
}

// buildPlanQueries materialises the per-plan query carriers after the
// shared bounds exist: each inherits its r-plan's small-grid state and
// the group's shared upper bounds, then computes its own threshold and
// candidate list (both functions of (r, k)).
func (g *groupRun) buildPlanQueries() {
	for _, pl := range g.plans {
		pl := pl
		if pl.rp.failed || !pl.rp.q.lbDone {
			continue
		}
		qp := newQuery(g.e, pl.r, pl.k)
		qp.idx = pl.rp.q.idx
		qp.labels = g.labels
		qp.newLabels = g.newLabels
		qp.lbBits = pl.rp.q.lbBits
		qp.tauLow = pl.rp.q.tauLow
		qp.tauUpp = g.tauUpp
		qp.lbDone = pl.rp.q.lbDone
		qp.ubDone = g.ubDone
		qp.adjBase = g.adjBase
		qp.cancelCheck = func() bool {
			return g.aborted() || g.membersAllDead(pl.members)
		}
		threshold := qp.kthHighest(qp.tauLow)
		pl.cand = qp.assembleCandidates(threshold)
		pl.qp = qp
	}
}

// cellWalk is the cell-major heart of the batch engine: it unions the
// candidate cells of every plan, counts the per-plan visits the union
// collapses, and freezes each cell of the union exactly once — a
// greedy Eq. 3-style partition by posting size balances the freezing
// across the worker pool, so the one pass that flattens each
// PostingBlock serves all interested plans.
func (g *groupRun) cellWalk() {
	var neigh [27]grid.Key
	union := make(map[grid.Key]struct{})
	visits := 0
	for _, pl := range g.plans {
		if pl.qp == nil {
			continue
		}
		planCells := make(map[grid.Key]struct{})
		for _, c := range pl.cand {
			for _, pg := range g.groups[c.obj] {
				for _, nk := range pg.key.NeighborsAndSelf(neigh[:0]) {
					if g.large.Cell(nk) == nil {
						continue
					}
					planCells[nk] = struct{}{}
				}
			}
		}
		visits += len(planCells)
		for k := range planCells {
			union[k] = struct{}{}
		}
	}
	g.rep.CellsDeduped = visits - len(union)

	freezeMin := g.e.opts.freezeMin()
	if freezeMin <= 0 {
		return
	}
	keys := make([]grid.Key, 0, len(union))
	for k := range union {
		c := g.large.Cell(k)
		if c.NumPoints() >= freezeMin && c.Frozen() == nil {
			keys = append(keys, k)
		}
	}
	g.rep.CellsWalked = len(keys)
	if len(keys) == 0 {
		return
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].Less(keys[b]) })
	weights := make([]int, len(keys))
	for i, k := range keys {
		weights[i] = g.large.Cell(k).NumPoints()
	}
	buckets := parallel.Greedy(weights, g.e.opts.workers())
	parallel.Run(len(buckets), func(w int) {
		for _, ci := range buckets[w] {
			g.large.Cell(keys[ci]).EnsureFrozen()
		}
	})
	// Pre-freezing is result-neutral: probeCell picks the frozen path
	// by cell size, not by whether a frozen image exists, and the
	// distComps accounting is layout-independent by construction.
}

// assemble turns the group state into per-member outcomes.
func (g *groupRun) assemble() {
	for i := range g.specs {
		g.mu.Lock()
		delivered := g.done[i]
		g.mu.Unlock()
		if delivered {
			continue
		}
		g.outs[i] = g.memberOutcome(i)
	}
}

func (g *groupRun) memberExpired(i int) bool {
	if c := g.specs[i].Ctx; c != nil && c.Err() != nil {
		return true
	}
	return g.ctx != nil && g.ctx.Err() != nil
}

func (g *groupRun) memberOutcome(i int) GroupOutcome {
	if g.deadAtStart[i] {
		return GroupOutcome{Err: g.specs[i].Ctx.Err()}
	}
	pl := g.memberPlan[i]
	if pl != nil && pl.ranFull && !g.memberExpired(i) {
		return GroupOutcome{Result: g.planResult(pl)}
	}
	res, err := g.memberDegraded(i, pl)
	if res == nil && err == nil {
		err = g.errFor(i)
	}
	return GroupOutcome{Result: res, Err: err}
}

// planResult assembles the shared exact Result of a completed plan,
// built once and shared by every member — the same aliasing a
// coalesced flight leader's result gets.
func (g *groupRun) planResult(pl *plan) *Result {
	if pl.result != nil {
		return pl.result
	}
	qp := pl.qp
	g.fillSharedStats(qp, pl)
	qp.finishGridStats()
	res := &Result{TopK: pl.top, Stats: qp.stats}
	if len(pl.top) > 0 {
		res.Best = pl.top[0]
	}
	pl.result = res
	return res
}

// fillSharedStats folds the group-phase measurements into a plan
// query's stats, mirroring what the solo run() records phase by
// phase. The verification-phase counters (Verified, DistanceComps,
// the per-plan AdjComputed replay) are already in qp.stats.
func (g *groupRun) fillSharedStats(qp *query, pl *plan) {
	qp.stats.LabelInput = g.labelDur
	if g.labels != nil {
		qp.stats.UsedLabels = true
		qp.stats.LabelBytes = g.labels.SizeBytes()
	}
	qp.stats.LabelPersistFailed = g.persistFailed
	qp.stats.GridMapping = g.gridDur
	qp.stats.SmallCells = pl.rp.q.idx.small.Len()
	qp.stats.LargeCells = g.large.Len()
	qp.stats.LowerBounding = pl.rp.lbDur
	qp.stats.UpperBounding = g.ubDur
	qp.stats.AdjComputed += g.adjShared
	qp.stats.Candidates = len(pl.cand)
	// The shared cell walk is verification work paid up front; charge
	// it to the phase that benefits, like the solo lazy freeze does.
	qp.stats.Verification = pl.verDur + g.walkDur
}

// memberDegraded builds the detached member's answer: a certified
// degraded result when the member opted in and the completed phases
// can certify one (same soundness ladder as query.degraded), else the
// member's context error.
func (g *groupRun) memberDegraded(i int, pl *plan) (*Result, error) {
	sp := &g.specs[i]
	if !sp.Degrade || pl == nil {
		return nil, g.errFor(i)
	}
	rp := pl.rp
	if rp.q == nil || rp.q.idx == nil {
		return nil, g.errFor(i)
	}
	qd := newQuery(g.e, sp.R, sp.K)
	qd.ctx = sp.Ctx
	if qd.ctx == nil || qd.ctx.Err() == nil {
		qd.ctx = g.ctx
	}
	if qd.ctx == nil {
		return nil, g.errFor(i)
	}
	qd.degradeOK = true
	if g.gmBroke {
		qd.gmBroke.Store(true)
	}
	qd.idx = rp.q.idx
	qd.labels = g.labels
	qd.lbDone = rp.q.lbDone
	qd.tauLow = rp.q.tauLow
	qd.ubDone = g.ubDone
	qd.tauUpp = g.tauUpp
	var top []Scored
	if pl.qp != nil {
		qd.trunc = pl.qp.trunc
		qd.stats = pl.qp.stats
		top = pl.top
		g.fillSharedStats(qd, pl)
	}
	return qd.degraded(top)
}
