package core

import (
	"context"
	"fmt"
	"sort"

	"mio/internal/bitmap"
	"mio/internal/grid"
)

// This file provides the analytical companions to the MIO query that
// the paper's motivating applications need once the answer is known:
// extracting O_i — the set of objects interacting with a given object
// (Example 2 extracts the sub-trajectories near the leader) — full
// score vectors for distribution analysis, and threshold sweeps that
// share one label store across queries.

// InteractingSet returns the ids of the objects interacting with
// object obj at threshold r (the set O_obj of Equation (1)), in
// increasing id order. It builds a BIGrid and runs the verification
// machinery for the single object, so it costs far less than a full
// query.
func (e *Engine) InteractingSet(r float64, obj int) ([]int, error) {
	return e.InteractingSetContext(context.Background(), r, obj)
}

// InteractingSetContext is InteractingSet with cancellation.
func (e *Engine) InteractingSetContext(ctx context.Context, r float64, obj int) ([]int, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: distance threshold must be positive, got %g", r)
	}
	if obj < 0 || obj >= e.ds.N() {
		return nil, fmt.Errorf("core: object %d out of range [0, %d)", obj, e.ds.N())
	}
	q := newQuery(e, r, 1)
	q.ctx = ctx
	q.gridMapping()
	if q.cancelled() {
		return nil, ctx.Err()
	}
	bOi := bitmap.NewScratch(q.n)
	mask := bitmap.NewScratch(q.n)
	ctr := ctrSet{}
	var neigh [27]grid.Key
	q.exactScore(obj, bOi, mask, neigh[:0], &ctr)
	if q.cancelled() {
		return nil, ctx.Err()
	}
	out := make([]int, 0, bOi.Cardinality()-1)
	bOi.ForEach(func(j int) bool {
		if j != obj {
			out = append(out, j)
		}
		return true
	})
	return out, nil
}

// AllScores returns the exact score of every object at threshold r.
// This is the full-scoring workload (no pruning pays off when every
// score is requested), useful for score-distribution analysis such as
// verifying the power-law shape of the Syn workload.
func (e *Engine) AllScores(r float64) ([]int, error) {
	return e.AllScoresContext(context.Background(), r)
}

// AllScoresContext is AllScores with cancellation: the full scoring
// loop checks ctx between objects.
func (e *Engine) AllScoresContext(ctx context.Context, r float64) ([]int, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: distance threshold must be positive, got %g", r)
	}
	q := newQuery(e, r, 1)
	q.ctx = ctx
	q.gridMapping()
	if q.cancelled() {
		return nil, ctx.Err()
	}
	scores := make([]int, q.n)
	if t := e.opts.workers(); t > 1 {
		for i := 0; i < q.n; i++ {
			if q.cancelled() {
				return nil, ctx.Err()
			}
			scores[i] = q.parallelExactScore(i)
		}
		return scores, nil
	}
	bOi := bitmap.NewScratch(q.n)
	mask := bitmap.NewScratch(q.n)
	ctr := ctrSet{}
	var neigh [27]grid.Key
	for i := 0; i < q.n; i++ {
		if q.cancelled() {
			return nil, ctx.Err()
		}
		scores[i] = q.exactScore(i, bOi, mask, neigh[:0], &ctr)
	}
	return scores, nil
}

// SweepResult pairs a threshold with its query result.
type SweepResult struct {
	R      float64 `json:"r"`
	Result *Result `json:"result"`
}

// Sweep runs top-k queries for every threshold in rs, in order. With a
// label store configured this is the paper's headline workload
// (§I-B, §III-D): fine-grained thresholds share ⌈r⌉, so later queries
// reuse the labels collected by earlier ones.
func (e *Engine) Sweep(rs []float64, k int) ([]SweepResult, error) {
	return e.SweepContext(context.Background(), rs, k)
}

// SweepContext is Sweep with cancellation: ctx is threaded through
// every per-threshold query, so a deadline bounds the whole sweep.
func (e *Engine) SweepContext(ctx context.Context, rs []float64, k int) ([]SweepResult, error) {
	out := make([]SweepResult, 0, len(rs))
	for _, r := range rs {
		res, err := e.RunTopKContext(ctx, r, k)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("core: sweep at r=%g: %w", r, err)
		}
		out = append(out, SweepResult{R: r, Result: res})
	}
	return out, nil
}

// ScoreHistogram buckets a score vector into at most buckets
// equal-width bins and returns the bin counts plus the bin width. It
// supports eyeballing the power-law shape of score distributions.
func ScoreHistogram(scores []int, buckets int) (counts []int, width int) {
	if len(scores) == 0 || buckets < 1 {
		return nil, 0
	}
	maxS := 0
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	width = maxS/buckets + 1
	counts = make([]int, (maxS/width)+1)
	for _, s := range scores {
		counts[s/width]++
	}
	return counts, width
}

// TopPercentile returns the smallest score greater than or equal to
// the given fraction (0..1] of all scores — e.g. 0.99 gives the 99th
// percentile score.
func TopPercentile(scores []int, frac float64) int {
	if len(scores) == 0 {
		return 0
	}
	cp := append([]int(nil), scores...)
	sort.Ints(cp)
	idx := int(frac*float64(len(cp))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}
