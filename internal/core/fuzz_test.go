package core

import (
	"math/rand"
	"reflect"
	"testing"

	"mio/internal/baseline"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/geom"
)

// TestRandomizedCrossCheck drives the whole engine through randomly
// drawn configurations — dataset shape, threshold, k, worker count,
// strategies, labels on/off, 2-D/3-D — and cross-checks every answer
// against the brute-force oracle. It is the closest thing to a fuzzer
// the deterministic-CI constraint allows.
func TestRandomizedCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		var ds *data.Dataset
		switch rng.Intn(4) {
		case 0:
			ds = data.GenUniform(data.UniformConfig{
				N: 10 + rng.Intn(80), M: 1 + rng.Intn(12),
				FieldSize: 20 + rng.Float64()*200, Spread: rng.Float64() * 20,
				Seed: rng.Int63(),
			})
		case 1:
			ds = data.GenNeuron(data.NeuronConfig{
				N: 5 + rng.Intn(25), M: 10 + rng.Intn(80),
				Clusters: 1 + rng.Intn(4), FieldSize: 50 + rng.Float64()*150,
				ClusterStd: 5 + rng.Float64()*20, StepLen: 0.5 + rng.Float64()*2,
				Branches: 1 + rng.Intn(5), Seed: rng.Int63(),
			})
		case 2:
			ds = data.GenTrajectory(data.TrajectoryConfig{
				N: 10 + rng.Intn(60), M: 5 + rng.Intn(25),
				Groups: 1 + rng.Intn(5), FieldSize: 200 + rng.Float64()*2000,
				Speed: 1 + rng.Float64()*20, FollowStd: 1 + rng.Float64()*10,
				Solo: rng.Float64(), Seed: rng.Int63(),
			})
		default:
			ds = data.GenPowerLaw(data.PowerLawConfig{
				N: 20 + rng.Intn(200), M: 1 + rng.Intn(8),
				Alpha: 1 + rng.Float64(), Clusters: 2 + rng.Intn(20),
				FieldSize: 100 + rng.Float64()*2000, HubStd: 2 + rng.Float64()*15,
				Seed: rng.Int63(),
			})
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid data: %v", trial, err)
		}
		ext := ds.Bounds().Extent()
		maxExt := ext.X
		if ext.Y > maxExt {
			maxExt = ext.Y
		}
		if ext.Z > maxExt {
			maxExt = ext.Z
		}
		r := 0.01 + rng.Float64()*maxExt/4
		k := 1 + rng.Intn(6)

		opts := Options{}
		if rng.Intn(2) == 1 {
			opts.Workers = 2 + rng.Intn(4)
			opts.LB = LBStrategy(rng.Intn(2))
			opts.UB = UBStrategy(rng.Intn(2))
		}
		if rng.Intn(2) == 1 {
			opts.Dims = 2 + rng.Intn(2)
			if opts.Dims == 2 && !planar(ds) {
				opts.Dims = 3
			}
		}
		var store *labelstore.Store
		if rng.Intn(2) == 1 {
			store = labelstore.NewStore()
			opts.Labels = store
		}

		oracle := baseline.NLScores(ds, r)
		want := baseline.TopKFromScores(oracle, k)

		eng, err := NewEngine(ds, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Two passes: with a store the second consumes the first's labels.
		for pass := 0; pass < 2; pass++ {
			res, err := eng.RunTopK(r, k)
			if err != nil {
				t.Fatalf("trial %d pass %d (opts %+v): %v", trial, pass, opts, err)
			}
			got := scoreMultiset(res.TopK)
			wantScores := baselineScores(want)
			if !reflect.DeepEqual(got, wantScores) {
				t.Fatalf("trial %d pass %d (n=%d r=%g k=%d opts %+v): scores %v, oracle %v",
					trial, pass, ds.N(), r, k, opts, got, wantScores)
			}
			for _, s := range res.TopK {
				if oracle[s.Obj] != s.Score {
					t.Fatalf("trial %d pass %d: obj %d reported %d, true %d",
						trial, pass, s.Obj, s.Score, oracle[s.Obj])
				}
			}
			if store == nil {
				break
			}
		}
	}
}

func planar(ds *data.Dataset) bool {
	for i := range ds.Objects {
		for _, p := range ds.Objects[i].Pts {
			if p.Z != 0 {
				return false
			}
		}
	}
	return true
}

// TestRandomizedTemporalCrossCheck does the same for the temporal
// engine.
func TestRandomizedTemporalCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	trials := 15
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		base := data.GenTrajectory(data.TrajectoryConfig{
			N: 15 + rng.Intn(50), M: 5 + rng.Intn(15),
			Groups: 1 + rng.Intn(4), FieldSize: 300 + rng.Float64()*1500,
			Speed: 2 + rng.Float64()*20, FollowStd: 1 + rng.Float64()*8,
			Solo: rng.Float64() / 2, Seed: rng.Int63(),
		})
		horizon := 10 + rng.Float64()*50
		ds := data.WithTimestamps(base, 0.5+rng.Float64()*2, horizon, rng.Int63())
		ext := ds.Bounds().Extent()
		r := 1 + rng.Float64()*(ext.X+ext.Y)/8
		delta := rng.Float64() * horizon / 2
		k := 1 + rng.Intn(4)

		oracle := baseline.TemporalNLScores(ds, r, delta)
		want := baselineScores(baseline.TopKFromScores(oracle, k))
		eng, err := NewTemporalEngine(ds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunTopK(r, delta, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := scoreMultiset(res.TopK); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (r=%g δ=%g k=%d): %v vs %v", trial, r, delta, k, got, want)
		}
	}
}

// TestDegenerateGeometry exercises coincident points, collinear
// objects, single-point objects and identical objects.
func TestDegenerateGeometry(t *testing.T) {
	pts := func(ps ...geom.Point) []geom.Point { return ps }
	ds := &data.Dataset{Objects: []data.Object{
		{ID: 0, Pts: pts(geom.Pt(0, 0, 0), geom.Pt(0, 0, 0), geom.Pt(0, 0, 0))}, // coincident
		{ID: 1, Pts: pts(geom.Pt(0, 0, 0))},                                     // identical location
		{ID: 2, Pts: pts(geom.Pt(1, 0, 0), geom.Pt(2, 0, 0), geom.Pt(3, 0, 0))}, // collinear
		{ID: 3, Pts: pts(geom.Pt(-4, 0, 0))},
		{ID: 4, Pts: pts(geom.Pt(0, 0, 0), geom.Pt(0, 0, 0))}, // duplicate of 0
	}}
	for _, r := range []float64{0.5, 1, 1.5, 4, 100} {
		oracle := baseline.NLScores(ds, r)
		for _, workers := range []int{1, 3} {
			eng, _ := NewEngine(ds, Options{Workers: workers})
			res, err := eng.RunTopK(r, 5)
			if err != nil {
				t.Fatalf("r=%g w=%d: %v", r, workers, err)
			}
			for _, s := range res.TopK {
				if oracle[s.Obj] != s.Score {
					t.Fatalf("r=%g w=%d obj %d: %d vs %d", r, workers, s.Obj, s.Score, oracle[s.Obj])
				}
			}
		}
	}
}

// TestNegativeCoordinates verifies grid keying handles points on both
// sides of the origin (floor semantics at cell boundaries).
func TestNegativeCoordinates(t *testing.T) {
	ds := &data.Dataset{Objects: []data.Object{
		{ID: 0, Pts: []geom.Point{geom.Pt(-0.5, -0.5, -0.5), geom.Pt(0.5, 0.5, 0.5)}},
		{ID: 1, Pts: []geom.Point{geom.Pt(-1.2, -0.4, 0)}},
		{ID: 2, Pts: []geom.Point{geom.Pt(10, -10, 10)}},
	}}
	for _, r := range []float64{0.7, 1.1, 3, 30} {
		oracle := baseline.NLScores(ds, r)
		eng, _ := NewEngine(ds, Options{})
		res, _ := eng.RunTopK(r, 3)
		for _, s := range res.TopK {
			if oracle[s.Obj] != s.Score {
				t.Fatalf("r=%g obj %d: %d vs %d", r, s.Obj, s.Score, oracle[s.Obj])
			}
		}
	}
}

// TestFractionalThresholds exercises r < 1, where ⌈r⌉ = 1 regardless
// of r and the large grid is shared across very different small grids.
func TestFractionalThresholds(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 60, M: 6, FieldSize: 30, Spread: 2, Seed: 47})
	store := labelstore.NewStore()
	eng, _ := NewEngine(ds, Options{Labels: store})
	for _, r := range []float64{0.2, 0.45, 0.7, 0.95} {
		oracle := baseline.NLScores(ds, r)
		best := 0
		for _, s := range oracle {
			if s > best {
				best = s
			}
		}
		res, err := eng.Run(r)
		if err != nil {
			t.Fatalf("r=%g: %v", r, err)
		}
		if res.Best.Score != best {
			t.Fatalf("r=%g: best %d, oracle %d (labels=%v)", r, res.Best.Score, best, res.Stats.UsedLabels)
		}
	}
	if !store.Has(1) {
		t.Fatal("no labels for ⌈r⌉=1")
	}
}

// FuzzEngineAgainstOracle is the native fuzz target CI's smoke stage
// drives (go test -fuzz=FuzzEngineAgainstOracle -fuzztime=30s): the
// fuzzer steers dataset shape, threshold, k and worker count, and
// every execution cross-checks the full pipeline against the
// brute-force oracle. The seeds cover the serial engine, both
// parallel partitioning strategy combinations, and a sub-cell-width
// threshold.
func FuzzEngineAgainstOracle(f *testing.F) {
	f.Add(uint8(40), uint8(6), int64(1), 4.0, uint8(1), uint8(0), uint8(0))
	f.Add(uint8(20), uint8(3), int64(7), 2.5, uint8(3), uint8(4), uint8(1))
	f.Add(uint8(63), uint8(7), int64(9), 0.7, uint8(2), uint8(3), uint8(2))
	f.Add(uint8(8), uint8(1), int64(5), 12.0, uint8(5), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, n, m uint8, seed int64, r float64, k, workers, strat uint8) {
		if r <= 0 || r != r || r > 100 {
			t.Skip("threshold out of the meaningful range")
		}
		ds := data.GenUniform(data.UniformConfig{
			N: int(n%64) + 2, M: int(m%8) + 1,
			FieldSize: 60, Spread: 6, Seed: seed,
		})
		opts := Options{Workers: int(workers % 6)}
		if strat&1 != 0 {
			opts.LB = LBHashP
		}
		if strat&2 != 0 {
			opts.UB = UBGreedyD
		}
		eng, err := NewEngine(ds, opts)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		kk := int(k%5) + 1
		res, err := eng.RunTopK(r, kk)
		if err != nil {
			t.Fatalf("RunTopK: %v", err)
		}
		oracle := baseline.NLScores(ds, r)
		want := baseline.TopKFromScores(oracle, kk)
		if len(res.TopK) != len(want) {
			t.Fatalf("top-k length %d, oracle %d", len(res.TopK), len(want))
		}
		for i := range want {
			if res.TopK[i].Score != want[i].Score {
				t.Fatalf("opts=%+v r=%g: rank %d score %d, oracle %d",
					opts, r, i, res.TopK[i].Score, want[i].Score)
			}
		}
	})
}
