package core

import (
	"runtime"
	"testing"

	"mio/internal/baseline"
	"mio/internal/data"
)

// TestParallelPhasesRaceStress drives every parallel phase of §IV —
// grid mapping, both lower-bounding strategies, both upper-bounding
// strategies and the parallel verification of parallelExactScore —
// across a GOMAXPROCS sweep on a dataset with many small objects (the
// shape that maximizes per-object bitset churn). Each run is checked
// against the serial engine, so a synchronization regression either
// trips the race detector or produces a wrong top-k here.
func TestParallelPhasesRaceStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	ds := data.GenUniform(data.UniformConfig{N: 150, M: 4, FieldSize: 80, Spread: 6, Seed: 31})
	const r, k = 6.0, 5

	serial, err := NewEngine(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.RunTopK(r, k)
	if err != nil {
		t.Fatal(err)
	}

	strategies := []Options{
		{Workers: 4},
		{Workers: 4, LB: LBHashP},
		{Workers: 4, UB: UBGreedyD},
		{Workers: 4, LB: LBHashP, UB: UBGreedyD},
		{Workers: 16},
	}
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for _, opts := range strategies {
			for round := 0; round < rounds; round++ {
				eng, err := NewEngine(ds, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.RunTopK(r, k)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.TopK {
					if got.TopK[i].Score != want.TopK[i].Score {
						t.Fatalf("procs=%d opts=%+v round=%d: top-%d score %d, want %d",
							procs, opts, round, i, got.TopK[i].Score, want.TopK[i].Score)
					}
				}
			}
		}
	}
}

// TestParallelVerificationRaceStress forces the engine through the
// verification phase with a threshold that keeps most objects as
// candidates, so parallelExactScore's worker-local bitsets and the
// round-robin point split carry real load. Scores are cross-checked
// against the quadratic oracle.
func TestParallelVerificationRaceStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	ds := data.GenUniform(data.UniformConfig{N: 90, M: 5, FieldSize: 45, Spread: 8, Seed: 32})
	const r = 9.0
	oracle := baseline.NLScores(ds, r)
	best := baseline.TopKFromScores(oracle, 3)

	for _, procs := range []int{2, 8} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{2, 4, 16} {
			eng, err := NewEngine(ds, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.RunTopK(r, 3)
			if err != nil {
				t.Fatal(err)
			}
			for i := range best {
				if res.TopK[i].Score != best[i].Score {
					t.Fatalf("procs=%d workers=%d: top-%d score %d, oracle %d",
						procs, workers, i, res.TopK[i].Score, best[i].Score)
				}
			}
		}
	}
}
