package core

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestResultJSONRoundTrip pins the wire format of the query result
// types: marshalling and unmarshalling must be lossless, and the keys
// must be the stable snake_case names internal/server promises, not
// accidental Go field names.
func TestResultJSONRoundTrip(t *testing.T) {
	in := Result{
		Best: Scored{Obj: 7, Score: 42},
		TopK: []Scored{{Obj: 7, Score: 42}, {Obj: 3, Score: 40}},
		Stats: PhaseStats{
			LabelInput:    3 * time.Millisecond,
			GridMapping:   5 * time.Millisecond,
			LowerBounding: 7 * time.Millisecond,
			UpperBounding: 11 * time.Millisecond,
			Verification:  13 * time.Millisecond,

			UsedLabels:    true,
			LabelBytes:    100,
			Candidates:    17,
			Verified:      9,
			DistanceComps: 12345,
			AdjComputed:   8,

			SmallCells: 21,
			LargeCells: 6,
			IndexBytes: 4096,

			SmallGridBytes:             512,
			SmallGridUncompressedBytes: 2048,
			LargeGridBytes:             256,
		},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mutated the result:\n in: %+v\nout: %+v", in, out)
	}

	// Every field of every wire type must carry an explicit snake_case
	// json tag; an untagged field would leak its Go name onto the wire.
	for _, typ := range []reflect.Type{
		reflect.TypeOf(Scored{}),
		reflect.TypeOf(Result{}),
		reflect.TypeOf(PhaseStats{}),
		reflect.TypeOf(SweepResult{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			tag := f.Tag.Get("json")
			if tag == "" || tag == "-" {
				t.Errorf("%s.%s: missing json tag", typ.Name(), f.Name)
				continue
			}
			for _, c := range tag {
				if c >= 'A' && c <= 'Z' {
					t.Errorf("%s.%s: json tag %q is not snake_case", typ.Name(), f.Name, tag)
					break
				}
			}
		}
	}

	// Spot-check the key names actually emitted.
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"best", "top_k", "stats"} {
		if _, ok := m[key]; !ok {
			t.Errorf("marshalled Result lacks key %q (got %v)", key, keys(m))
		}
	}
	stats, ok := m["stats"].(map[string]any)
	if !ok {
		t.Fatalf("stats did not marshal as an object")
	}
	for _, key := range []string{"grid_mapping_ns", "verification_ns", "distance_comps", "used_labels"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("marshalled PhaseStats lacks key %q", key)
		}
	}
	if got := stats["grid_mapping_ns"].(float64); got != float64(5*time.Millisecond) {
		t.Errorf("grid_mapping_ns = %v, want %v (nanoseconds)", got, float64(5*time.Millisecond))
	}
}

func keys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
