// Package parallel provides the load-balancing primitives of §IV: the
// greedy multiway number partitioning heuristic (optimal partitioning
// is NP-complete, Theorem 3), contiguous range splitting, and a small
// worker-pool helper.
package parallel

import "sync"

// Greedy assigns items with the given weights to t buckets using the
// paper's incremental greedy heuristic: items are visited in order and
// each goes to the bucket with the smallest cumulative weight. It
// returns the item indices per bucket.
func Greedy(weights []int, t int) [][]int {
	if t < 1 {
		t = 1
	}
	buckets := make([][]int, t)
	loads := make([]int64, t)
	for i, w := range weights {
		best := 0
		for b := 1; b < t; b++ {
			if loads[b] < loads[best] {
				best = b
			}
		}
		buckets[best] = append(buckets[best], i)
		loads[best] += int64(w)
	}
	return buckets
}

// GreedyLoads returns the final bucket loads that Greedy would produce,
// for load-balance diagnostics and tests.
func GreedyLoads(weights []int, t int) []int64 {
	if t < 1 {
		t = 1
	}
	loads := make([]int64, t)
	for _, w := range weights {
		best := 0
		for b := 1; b < t; b++ {
			if loads[b] < loads[best] {
				best = b
			}
		}
		loads[best] += int64(w)
	}
	return loads
}

// Ranges splits items 0..n-1 into at most t contiguous ranges with
// near-equal total weight, preserving order. It returns (lo, hi) pairs;
// every item belongs to exactly one range. Used where processing order
// must stay monotone in item index (e.g. bitset append order during
// grid building).
func Ranges(weights []int, t int) [][2]int {
	n := len(weights)
	if t < 1 {
		t = 1
	}
	if t > n {
		t = n
	}
	if n == 0 {
		return nil
	}
	total := int64(0)
	for _, w := range weights {
		total += int64(w)
	}
	out := make([][2]int, 0, t)
	lo := 0
	acc := int64(0)
	emitted := 0
	for i := 0; i < n; i++ {
		acc += int64(weights[i])
		remainingRanges := t - emitted
		if remainingRanges <= 1 {
			continue
		}
		// Close the range once it reaches its fair share of what is
		// left.
		if acc*int64(remainingRanges) >= total {
			out = append(out, [2]int{lo, i + 1})
			emitted++
			total -= acc
			acc = 0
			lo = i + 1
		}
	}
	if lo < n {
		out = append(out, [2]int{lo, n})
	}
	return out
}

// RoundRobin splits items 0..n-1 into t interleaved buckets
// (item i goes to bucket i mod t). Used for the verification-phase
// point splitting, which assigns points with the same key uniformly to
// each core.
func RoundRobin(n, t int) [][]int {
	if t < 1 {
		t = 1
	}
	if t > n && n > 0 {
		t = n
	}
	buckets := make([][]int, t)
	for i := 0; i < n; i++ {
		b := i % t
		buckets[b] = append(buckets[b], i)
	}
	return buckets
}

// Run executes fn(worker) on t goroutines and waits for all of them.
func Run(t int, fn func(worker int)) {
	if t <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(t)
	for w := 0; w < t; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
