package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestRunStressRace hammers Run across a GOMAXPROCS sweep. Each round
// checks two things the §IV phases depend on: every worker index in
// [0,t) runs exactly once, and all worker writes are visible to the
// caller once Run returns (the WaitGroup must publish them). A
// regression in Run's synchronization shows up as a -race report or a
// lost update here.
func TestRunStressRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	rounds := 200
	if testing.Short() {
		rounds = 20
	}
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 3, 8, 16} {
			for round := 0; round < rounds; round++ {
				seen := make([]int32, workers)
				var total atomic.Int64
				Run(workers, func(w int) {
					// Unsynchronized per-worker slot: only safe if Run
					// really gives each worker a distinct index.
					seen[w]++
					total.Add(int64(w) + 1)
				})
				for w, c := range seen {
					if c != 1 {
						t.Fatalf("procs=%d workers=%d: worker %d ran %d times", procs, workers, w, c)
					}
				}
				want := int64(workers) * int64(workers+1) / 2
				if total.Load() != want {
					t.Fatalf("procs=%d workers=%d: total %d, want %d", procs, workers, total.Load(), want)
				}
			}
		}
	}
}

// TestPartitionersConcurrentUse runs the three partitioners from many
// goroutines at once over shared inputs. They are pure functions; any
// hidden shared state (memoization, scratch reuse) would trip -race.
func TestPartitionersConcurrentUse(t *testing.T) {
	weights := make([]int, 500)
	for i := range weights {
		weights[i] = (i*7919)%97 + 1
	}
	goroutines := 8
	rounds := 50
	if testing.Short() {
		rounds = 5
	}
	Run(goroutines, func(w int) {
		for round := 0; round < rounds; round++ {
			tgt := w%4 + 1
			buckets := Greedy(weights, tgt)
			loads := GreedyLoads(weights, tgt)
			if len(buckets) != len(loads) {
				t.Errorf("Greedy/GreedyLoads bucket count mismatch: %d vs %d", len(buckets), len(loads))
				return
			}
			covered := 0
			for _, b := range buckets {
				covered += len(b)
			}
			if covered != len(weights) {
				t.Errorf("Greedy dropped items: %d of %d", covered, len(weights))
				return
			}
			ranges := Ranges(weights, tgt)
			last := 0
			for _, r := range ranges {
				if r[0] != last {
					t.Errorf("Ranges not contiguous at %v", r)
					return
				}
				last = r[1]
			}
			if last != len(weights) {
				t.Errorf("Ranges covered %d of %d items", last, len(weights))
				return
			}
			rr := RoundRobin(len(weights), tgt)
			covered = 0
			for _, b := range rr {
				covered += len(b)
			}
			if covered != len(weights) {
				t.Errorf("RoundRobin dropped items: %d of %d", covered, len(weights))
				return
			}
		}
	})
}
