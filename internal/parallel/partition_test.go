package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestGreedyCoversAllItems(t *testing.T) {
	f := func(weights []uint8, t8 uint8) bool {
		tn := int(t8%8) + 1
		ws := make([]int, len(weights))
		for i, w := range weights {
			ws[i] = int(w)
		}
		buckets := Greedy(ws, tn)
		if len(buckets) != tn {
			return false
		}
		seen := map[int]bool{}
		for _, b := range buckets {
			for _, i := range b {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return len(seen) == len(ws)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyBalances(t *testing.T) {
	// Equal weights must split perfectly.
	ws := make([]int, 100)
	for i := range ws {
		ws[i] = 10
	}
	loads := GreedyLoads(ws, 4)
	for _, l := range loads {
		if l != 250 {
			t.Fatalf("loads = %v", loads)
		}
	}
	// Skewed weights: max load must stay within max(weight) of the
	// mean (classic greedy guarantee for this arrival order is weaker,
	// but the bound max <= mean + maxW holds).
	ws = []int{100, 1, 1, 1, 1, 1, 1, 50, 50, 3}
	loads = GreedyLoads(ws, 3)
	total := int64(0)
	maxLoad := int64(0)
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total != 209 {
		t.Fatalf("total = %d", total)
	}
	if maxLoad > 209/3+100 {
		t.Fatalf("maxLoad = %d", maxLoad)
	}
}

func TestGreedyEdgeCases(t *testing.T) {
	if got := Greedy(nil, 4); len(got) != 4 {
		t.Fatalf("nil weights: %v", got)
	}
	if got := Greedy([]int{5}, 0); len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("t=0: %v", got)
	}
}

func TestRanges(t *testing.T) {
	ws := []int{10, 10, 10, 10, 10, 10, 10, 10}
	rs := Ranges(ws, 4)
	if len(rs) != 4 {
		t.Fatalf("ranges = %v", rs)
	}
	// Contiguous cover.
	next := 0
	for _, r := range rs {
		if r[0] != next || r[1] <= r[0] {
			t.Fatalf("ranges not contiguous: %v", rs)
		}
		next = r[1]
	}
	if next != len(ws) {
		t.Fatalf("ranges don't cover: %v", rs)
	}
	// Balanced for uniform weights.
	for _, r := range rs {
		if r[1]-r[0] != 2 {
			t.Fatalf("unbalanced uniform split: %v", rs)
		}
	}
}

func TestRangesSkewed(t *testing.T) {
	ws := []int{1000, 1, 1, 1, 1, 1, 1, 1}
	rs := Ranges(ws, 4)
	// First range must contain only the heavy item.
	if rs[0] != [2]int{0, 1} {
		t.Fatalf("heavy item not isolated: %v", rs)
	}
	next := 0
	for _, r := range rs {
		if r[0] != next {
			t.Fatalf("gap in ranges: %v", rs)
		}
		next = r[1]
	}
	if next != len(ws) {
		t.Fatalf("missing tail: %v", rs)
	}
}

func TestRangesQuickCoverage(t *testing.T) {
	f := func(weights []uint8, t8 uint8) bool {
		tn := int(t8%8) + 1
		ws := make([]int, len(weights))
		for i, w := range weights {
			ws[i] = int(w)
		}
		rs := Ranges(ws, tn)
		if len(ws) == 0 {
			return rs == nil
		}
		next := 0
		for _, r := range rs {
			if r[0] != next || r[1] <= r[0] {
				return false
			}
			next = r[1]
		}
		return next == len(ws) && len(rs) <= tn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobin(t *testing.T) {
	b := RoundRobin(10, 3)
	if len(b) != 3 {
		t.Fatalf("buckets = %d", len(b))
	}
	counts := map[int]int{}
	for _, bk := range b {
		for _, i := range bk {
			counts[i]++
		}
	}
	for i := 0; i < 10; i++ {
		if counts[i] != 1 {
			t.Fatalf("item %d count %d", i, counts[i])
		}
	}
	if got := RoundRobin(2, 8); len(got) != 2 {
		t.Fatalf("t>n buckets = %d", len(got))
	}
}

func TestRunExecutesAllWorkers(t *testing.T) {
	var count atomic.Int64
	Run(8, func(w int) { count.Add(int64(w) + 1) })
	if count.Load() != 36 {
		t.Fatalf("sum = %d", count.Load())
	}
	ran := false
	Run(1, func(w int) { ran = w == 0 })
	if !ran {
		t.Fatal("t=1 did not run inline")
	}
}
