package mio

// One benchmark family per table/figure of the paper's evaluation (§V).
// These are the testing.B counterparts of cmd/miobench: small fixed
// workloads whose relative numbers show the paper's shapes (BIGrid ≫
// SG ≫ NL; labels accelerate re-queries; top-k grows mildly with k;
// cost-based partitioning beats naive partitioning). Run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for paper-vs-measured discussion.

import (
	"sync"
	"testing"

	"mio/internal/baseline"
	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
)

var benchSets = struct {
	once sync.Once
	m    map[string]*data.Dataset
}{}

// benchDatasets returns small fixed-size versions of the stand-ins.
func benchDatasets() map[string]*data.Dataset {
	benchSets.once.Do(func() {
		benchSets.m = map[string]*data.Dataset{
			"Neuron": data.GenNeuron(data.NeuronConfig{
				N: 60, M: 300, Clusters: 5, FieldSize: 400, ClusterStd: 30, StepLen: 1.5, Branches: 5, Seed: 51,
			}),
			"Bird": data.GenTrajectory(data.TrajectoryConfig{
				N: 1200, M: 30, Groups: 12, FieldSize: 9000, Speed: 28, FollowStd: 11, Solo: 0.35, Seed: 52,
			}),
			"Syn": data.GenPowerLaw(data.PowerLawConfig{
				N: 4000, M: 8, Alpha: 1.6, Clusters: 120, FieldSize: 40000, HubStd: 7, Seed: 53,
			}),
		}
	})
	return benchSets.m
}

func benchEngine(b *testing.B, ds *data.Dataset, opts core.Options) *core.Engine {
	b.Helper()
	e, err := core.NewEngine(ds, opts)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFig5Time covers Fig. 5(a)-(e): runtime of each algorithm at
// r = 4 on each dataset (NL only where it is feasible).
func BenchmarkFig5Time(b *testing.B) {
	const r = 4.0
	for name, ds := range benchDatasets() {
		ds := ds
		if name == "Neuron" { // NL is quadratic; only the smallest set
			b.Run(name+"/NL", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baseline.NL(ds, r, 1)
				}
			})
		}
		b.Run(name+"/SG", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.SG(ds, r, 1)
			}
		})
		b.Run(name+"/BIGrid", func(b *testing.B) {
			e := benchEngine(b, ds, core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(r); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/BIGrid-label", func(b *testing.B) {
			store := labelstore.NewStore()
			e := benchEngine(b, ds, core.Options{Labels: store})
			if _, err := e.Run(r); err != nil { // prime labels
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Mem covers Fig. 5(f)-(j): it reports index bytes as
// custom metrics instead of time.
func BenchmarkFig5Mem(b *testing.B) {
	const r = 4.0
	for name, ds := range benchDatasets() {
		ds := ds
		b.Run(name, func(b *testing.B) {
			var sgBytes, bgBytes int
			for i := 0; i < b.N; i++ {
				sgBytes = baseline.BuildSG(ds, r).SizeBytes()
				e := benchEngine(b, ds, core.Options{})
				res, err := e.Run(r)
				if err != nil {
					b.Fatal(err)
				}
				bgBytes = res.Stats.IndexBytes
			}
			b.ReportMetric(float64(sgBytes), "SG-bytes")
			b.ReportMetric(float64(bgBytes), "BIGrid-bytes")
		})
	}
}

// BenchmarkTable2 covers Table II: the labeled re-query whose phase
// breakdown the table reports (the benchmark measures the end-to-end
// labeled run; per-phase numbers come from cmd/miobench).
func BenchmarkTable2(b *testing.B) {
	const r = 4.0
	ds := benchDatasets()["Bird"]
	store := labelstore.NewStore()
	e := benchEngine(b, ds, core.Options{Labels: store})
	if _, err := e.Run(r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Stats.UsedLabels {
			b.Fatal("labels not used")
		}
	}
}

// BenchmarkFig6 covers the scalability test: BIGrid runtime at growing
// sampling rates of the Syn stand-in.
func BenchmarkFig6(b *testing.B) {
	const r = 4.0
	full := benchDatasets()["Syn"]
	for _, rate := range []float64{0.25, 0.5, 1.0} {
		ds := full.Sample(rate, 61)
		b.Run(rateName(rate), func(b *testing.B) {
			e := benchEngine(b, ds, core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func rateName(rate float64) string {
	switch rate {
	case 0.25:
		return "s=0.25"
	case 0.5:
		return "s=0.50"
	default:
		return "s=1.00"
	}
}

// BenchmarkFig7 covers the top-k variant: runtime vs k.
func BenchmarkFig7(b *testing.B) {
	const r = 4.0
	ds := benchDatasets()["Bird"]
	for _, k := range []int{1, 10, 50} {
		k := k
		b.Run(kName(k), func(b *testing.B) {
			e := benchEngine(b, ds, core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RunTopK(r, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func kName(k int) string {
	switch k {
	case 1:
		return "k=1"
	case 10:
		return "k=10"
	default:
		return "k=50"
	}
}

// BenchmarkFig8 covers the parallel partitioning strategies at two
// workers (single-CPU hosts still exercise the code paths; real
// speedups need real cores).
func BenchmarkFig8(b *testing.B) {
	const r = 4.0
	ds := benchDatasets()["Neuron"]
	cases := []struct {
		name string
		opts core.Options
	}{
		{"LB-greedy-d", core.Options{Workers: 2, LB: core.LBGreedyD}},
		{"LB-hash-p", core.Options{Workers: 2, LB: core.LBHashP}},
		{"UB-greedy-p", core.Options{Workers: 2, UB: core.UBGreedyP}},
		{"UB-greedy-d", core.Options{Workers: 2, UB: core.UBGreedyD}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			e := benchEngine(b, ds, c.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9 covers the parallelised algorithms end to end.
func BenchmarkFig9(b *testing.B) {
	const (
		r = 4.0
		t = 2
	)
	ds := benchDatasets()["Bird"]
	b.Run("NL-parallel", func(b *testing.B) {
		small := benchDatasets()["Neuron"]
		for i := 0; i < b.N; i++ {
			baseline.NLParallel(small, r, 1, t)
		}
	})
	b.Run("SG-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.SGParallel(ds, r, 1, t)
		}
	})
	b.Run("BIGrid-parallel", func(b *testing.B) {
		e := benchEngine(b, ds, core.Options{Workers: t})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable3 covers the speedup table's ingredients: BIGrid at 1,
// 2 and 4 workers on the same dataset.
func BenchmarkTable3(b *testing.B) {
	const r = 4.0
	ds := benchDatasets()["Neuron"]
	for _, t := range []int{1, 2, 4} {
		t := t
		b.Run(tName(t), func(b *testing.B) {
			e := benchEngine(b, ds, core.Options{Workers: t})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func tName(t int) string {
	switch t {
	case 1:
		return "t=1"
	case 2:
		return "t=2"
	default:
		return "t=4"
	}
}

// BenchmarkAppendixA is the design-choice ablation: per-object
// accumulation via compressed-OR-into-scratch (what the engine does)
// vs compressed-to-compressed merges (the naive alternative), plus
// dense bitsets with full re-zeroing. It justifies both the compressed
// cell bitsets and the epoch-reset scratch accumulator.
func BenchmarkAppendixA(b *testing.B) {
	ds := benchDatasets()["Syn"]
	const r = 4.0
	e := benchEngine(b, ds, core.Options{})
	res, err := e.Run(r)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("engine-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("metrics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = res
		}
		b.ReportMetric(float64(res.Stats.SmallGridBytes), "small-compressed-bytes")
		b.ReportMetric(float64(res.Stats.SmallGridUncompressedBytes), "small-dense-bytes")
	})
}
