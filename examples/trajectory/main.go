// Trajectory leader detection (Example 2 of the paper): find the
// sub-trajectories that move together with the largest share of a bird
// trajectory set, the starting point for leader-follower analysis. The
// dataset is planar, so the engine runs in 2-D mode for tighter lower
// bounds.
package main

import (
	"fmt"
	"log"

	"mio"
)

func main() {
	cfg := mio.DefaultBirdConfig()
	cfg.N = 3000
	ds := mio.GenerateTrajectory(cfg)
	fmt.Printf("dataset: %d sub-trajectories, avg %.0f positions each\n", ds.N(), ds.AvgPoints())

	eng, err := mio.NewEngine(ds, mio.With2D(), mio.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}

	// r = 4 m, as in the paper's Fig. 2: birds within 4 metres are
	// considered to be moving together.
	const r = 4.0
	res, err := eng.QueryTopK(r, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-5 most-followed trajectories at r=%.0fm:\n", r)
	for i, s := range res.TopK {
		frac := 100 * float64(s.Score) / float64(ds.N()-1)
		fmt.Printf("  #%d: trajectory %5d interacts with %4d others (%.1f%% of the set)\n",
			i+1, s.Obj, s.Score, frac)
	}

	// Extract the leader's interacting set — the sub-trajectories that
	// moved with it (the paper's Example 2 extracts exactly this for
	// leader-follower analysis).
	followers, err := eng.InteractingSet(r, res.Best.Obj)
	if err != nil {
		log.Fatal(err)
	}
	show := followers
	if len(show) > 8 {
		show = show[:8]
	}
	fmt.Printf("\nfollowers of %d (first %d of %d): %v\n",
		res.Best.Obj, len(show), len(followers), show)

	// The leader's bounding box sketches where the flock flew.
	leader := ds.Objects[res.Best.Obj]
	min, max := leader.Pts[0], leader.Pts[0]
	for _, p := range leader.Pts {
		if p.X < min.X {
			min.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	fmt.Printf("\nleader %d flew through [%.0f,%.0f] x [%.0f,%.0f] (m)\n",
		res.Best.Obj, min.X, max.X, min.Y, max.Y)
	fmt.Printf("query pipeline: %d candidates, %d verified, %v total\n",
		res.Stats.Candidates, res.Stats.Verified, res.Stats.Total())
}
