// Spatio-temporal interaction (Appendix B of the paper): two animals
// only really "meet" if they were at the same place at roughly the same
// time. This example compares the purely spatial answer with temporal
// answers at several δ, showing how the temporal constraint thins the
// interaction graph.
package main

import (
	"fmt"
	"log"

	"mio"
)

func main() {
	cfg := mio.DefaultBirdConfig()
	cfg.N = 1200
	spatial := mio.GenerateTrajectory(cfg)
	// Stamp each trajectory with one position per second, starting at a
	// random offset inside a 2-minute window.
	ds := mio.WithTimestamps(spatial, 1.0, 120, 7)
	fmt.Printf("dataset: %d trajectories with timestamps\n", ds.N())

	const r = 6.0 // metres

	// Spatial-only reference: same place, any time.
	seng, err := mio.NewEngine(spatial)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := seng.Query(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spatial only:      object %4d meets %4d others\n", sres.Best.Obj, sres.Best.Score)

	teng, err := mio.NewTemporalEngine(ds)
	if err != nil {
		log.Fatal(err)
	}
	for _, delta := range []float64{60, 15, 5, 1} {
		res, err := teng.Query(r, delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("δ = %5.0f seconds: object %4d meets %4d others\n",
			delta, res.Best.Obj, res.Best.Score)
	}

	// δ = 0: only exact-instant co-location counts.
	res, err := teng.Query(r, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("δ =     0 (exact): object %4d meets %4d others\n", res.Best.Obj, res.Best.Score)
}
