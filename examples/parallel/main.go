// Multi-core scaling (§IV of the paper): run the same query with 1, 2,
// 4, ... cores and compare the partitioning strategies. The cost-based
// defaults (LB-greedy-d, UB-greedy-p) scale; the alternatives exist to
// show why load balancing needs a cost model.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"mio"
)

func main() {
	cfg := mio.DefaultNeuronConfig()
	cfg.N = 300
	ds := mio.GenerateNeuron(cfg)
	fmt.Printf("dataset: %d neurons, %d points total, %d CPUs available\n",
		ds.N(), ds.TotalPoints(), runtime.GOMAXPROCS(0))

	const r = 4.0
	run := func(opts ...mio.Option) time.Duration {
		eng, err := mio.NewEngine(ds, opts...)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if _, err := eng.Query(r); err != nil {
			log.Fatal(err)
		}
		return time.Since(t0)
	}

	base := run()
	fmt.Printf("\n%-28s %10v  speedup\n", "single core", base.Round(time.Millisecond))

	for _, w := range []int{2, 4, 8} {
		if w > runtime.GOMAXPROCS(0) {
			break
		}
		d := run(mio.WithWorkers(w))
		fmt.Printf("%-28s %10v  %.2fx\n",
			fmt.Sprintf("%d cores (default strategy)", w), d.Round(time.Millisecond),
			float64(base)/float64(d))
	}

	// Strategy comparison at the highest core count (Fig. 8's setup).
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	fmt.Printf("\nstrategy comparison at %d cores:\n", w)
	type combo struct {
		name string
		opts []mio.Option
	}
	for _, c := range []combo{
		{"LB-greedy-d + UB-greedy-p", []mio.Option{mio.WithWorkers(w)}},
		{"LB-hash-p   + UB-greedy-p", []mio.Option{mio.WithWorkers(w), mio.WithLBStrategy(mio.LBHashP)}},
		{"LB-greedy-d + UB-greedy-d", []mio.Option{mio.WithWorkers(w), mio.WithUBStrategy(mio.UBGreedyD)}},
	} {
		d := run(c.opts...)
		fmt.Printf("  %-26s %10v\n", c.name, d.Round(time.Millisecond))
	}
}
