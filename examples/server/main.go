// Embedded MIO query server: mio.Handler wraps an engine with the
// full serving stack — request coalescing, an LRU result cache and
// admission control — as a plain http.Handler, here mounted on an
// in-process httptest.Server and exercised with a repeated-r workload
// so the cache and the label store (§III-D) both kick in. The same
// handler can be mounted on any mux in a real process; cmd/miosrv is
// the standalone flavour with an engine pool and dataset swapping.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"mio"
)

func getJSON(base, path string, out any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: %s (%s)", path, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func main() {
	cfg := mio.DefaultNeuronConfig()
	cfg.N = 200
	ds := mio.GenerateNeuron(cfg)

	eng, err := mio.NewEngine(ds, mio.WithLabels())
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(mio.Handler(eng, mio.ServerOptions{CacheSize: 64}))
	defer ts.Close()
	fmt.Printf("serving %d neurons at %s\n\n", ds.N(), ts.URL)

	// Repeat a small set of thresholds, as a dashboard polling a few
	// fixed views would: the second pass is answered from the cache.
	var q struct {
		Cached bool `json:"cached"`
		Result struct {
			Best struct {
				Obj   int `json:"obj"`
				Score int `json:"score"`
			} `json:"best"`
			Stats struct {
				UsedLabels bool `json:"used_labels"`
			} `json:"stats"`
		} `json:"result"`
	}
	for pass := 1; pass <= 2; pass++ {
		for _, r := range []float64{4, 4.5, 5} {
			if err := getJSON(ts.URL, fmt.Sprintf("/v1/query?r=%g&k=3", r), &q); err != nil {
				log.Fatal(err)
			}
			note := ""
			if q.Cached {
				note = "  [cache hit]"
			} else if q.Result.Stats.UsedLabels {
				note = "  [labels reused]"
			}
			fmt.Printf("pass %d  r=%.1f: hub %3d with score %3d%s\n",
				pass, r, q.Result.Best.Obj, q.Result.Best.Score, note)
		}
	}

	var m struct {
		EngineRuns uint64 `json:"engine_runs_total"`
		Cache      struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := getJSON(ts.URL, "/metrics", &m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/metrics: %d engine runs for 6 requests (%d cache hits, %d misses)\n",
		m.EngineRuns, m.Cache.Hits, m.Cache.Misses)
}
