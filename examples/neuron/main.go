// Neuron-hub analysis (Example 1 of the paper): sweep the synapse
// proximity threshold r over a neuron dataset and identify the hub
// neuron at each r. Thresholds are fine-grained, so the label store
// turns every query after the first within the same ⌈r⌉ into a much
// cheaper one — exactly the workload §III-D targets.
package main

import (
	"fmt"
	"log"

	"mio"
)

func main() {
	cfg := mio.DefaultNeuronConfig()
	cfg.N = 250
	ds := mio.GenerateNeuron(cfg)
	fmt.Printf("dataset: %d neurons, avg %.0f points each\n", ds.N(), ds.AvgPoints())

	eng, err := mio.NewEngine(ds, mio.WithLabels())
	if err != nil {
		log.Fatal(err)
	}

	// A fine-grained sweep: 4.0, 4.25, ... 5.0 µm all share ⌈r⌉ = 5, so
	// the first query labels points and the rest reuse the labels.
	for r := 4.0; r <= 5.01; r += 0.25 {
		res, err := eng.Query(r)
		if err != nil {
			log.Fatal(err)
		}
		reused := ""
		if res.Stats.UsedLabels {
			reused = "  [labels reused]"
		}
		fmt.Printf("r=%.2fµm: hub neuron %3d connects to %3d neurons  (%8v)%s\n",
			r, res.Best.Obj, res.Best.Score, res.Stats.Total().Round(10_000), reused)
	}

	// Inspect the hub at the largest threshold: which fraction of the
	// population does it reach?
	res, _ := eng.Query(5.0)
	frac := float64(res.Best.Score) / float64(ds.N()-1)
	fmt.Printf("\nhub neuron %d reaches %.0f%% of the population at r=5µm\n",
		res.Best.Obj, 100*frac)
}
