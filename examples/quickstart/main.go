// Quickstart: build a tiny dataset by hand, run one MIO query and one
// top-k query, and read the result fields.
package main

import (
	"fmt"
	"log"

	"mio"
)

func main() {
	// Three "objects", each a set of points. Objects 0 and 1 pass close
	// to each other; object 2 is off on its own.
	ds, err := mio.NewDataset("quickstart", [][]mio.Point{
		{mio.Pt(0, 0, 0), mio.Pt(1, 0, 0), mio.Pt(2, 0, 0)},
		{mio.Pt(2.5, 0.5, 0), mio.Pt(3.5, 0.5, 0)},
		{mio.Pt(100, 100, 0)},
	})
	if err != nil {
		log.Fatal(err)
	}

	eng, err := mio.NewEngine(ds)
	if err != nil {
		log.Fatal(err)
	}

	// With r = 1 the pair (0, 1) interacts: their closest points are
	// ~0.71 apart.
	res, err := eng.Query(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most interactive object: %d (interacts with %d objects)\n",
		res.Best.Obj, res.Best.Score)

	// Top-k returns every object with its exact score.
	topk, err := eng.QueryTopK(1.0, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range topk.TopK {
		fmt.Printf("  #%d: object %d, score %d\n", i+1, s.Obj, s.Score)
	}

	// The statistics show what the BIGrid pipeline did.
	fmt.Printf("pipeline: %d candidates after bounding, %d exact scores computed, %v total\n",
		res.Stats.Candidates, res.Stats.Verified, res.Stats.Total())
}
