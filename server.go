package mio

import (
	"net/http"
	"time"

	"mio/internal/server"
)

// ServerOptions tunes the embedded MIO query server returned by
// Handler. The zero value selects the defaults documented per field.
type ServerOptions struct {
	// CacheSize is the result cache capacity in entries (default 256).
	CacheSize int
	// QueryTimeout is the per-request engine deadline (default 30s;
	// negative disables it).
	QueryTimeout time.Duration
	// AdmissionWait is how long a request may queue for the engine
	// before a 429 (default 100ms; negative rejects immediately).
	AdmissionWait time.Duration
	// DisableCache turns off result caching.
	DisableCache bool
	// DisableCoalesce turns off single-flight request coalescing.
	DisableCoalesce bool
	// MaxSweep bounds the thresholds per /v1/sweep request (default 64).
	MaxSweep int
}

// Handler returns an http.Handler serving the MIO query API over e,
// for embedding the server into an existing process: GET /v1/query,
// /v1/interacting, /v1/scores, /v1/sweep, /healthz and /metrics (see
// DESIGN.md §9 for the wire format). Requests are coalesced
// (concurrent identical queries share one engine run), results are
// cached in a bounded LRU, and engine runs are serialised — the
// Engine contract allows one query at a time — with queueing
// requests rejected 429 once AdmissionWait expires. For a
// multi-engine pool, dataset swapping and graceful drain, use
// cmd/miosrv.
func Handler(e *Engine, opts ServerOptions) http.Handler {
	return server.NewFromEngine(e.inner, server.Config{
		CacheSize:       opts.CacheSize,
		QueryTimeout:    opts.QueryTimeout,
		AdmissionWait:   opts.AdmissionWait,
		DisableCache:    opts.DisableCache,
		DisableCoalesce: opts.DisableCoalesce,
		MaxSweep:        opts.MaxSweep,
	}).Handler()
}
