// Package mio finds the Most Interactive Object in a spatial dataset.
//
// An object is a set of 3-D (or planar) points — a neuron arbor, an
// animal trajectory, a point-cloud — and two objects with threshold r
// "interact" when some pair of their points lies within Euclidean
// distance r. An MIO query returns the object interacting with the most
// other objects; the top-k variant returns the k best. The
// implementation reproduces "Identifying the Most Interactive Object in
// Spatial Databases" (Amagata & Hara, ICDE 2019): the BIGrid index — a
// hybrid of compressed bitsets, inverted lists and two spatial grids,
// built online per query — drives a filter-and-verify pipeline whose
// lower and upper bounds need no distance computations at all, a
// labeling scheme recycles work across queries that share ⌈r⌉, and
// every phase parallelises across cores with cost-based load balancing.
//
// Quick start:
//
//	ds, _ := mio.LoadDataset("birds.txt")
//	eng, _ := mio.NewEngine(ds, mio.WithWorkers(8), mio.WithLabels())
//	res, _ := eng.Query(4.0) // distance threshold in dataset units
//	fmt.Println(res.Best.Obj, res.Best.Score)
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the architecture and the paper-experiment index.
package mio
