package mio

import (
	"context"

	"mio/internal/core"
)

// SweepResult pairs a threshold with the query result it produced.
type SweepResult = core.SweepResult

// InteractingSet returns the ids of the objects interacting with obj
// at threshold r — the set an analyst extracts once the MIO answer is
// known (e.g. the sub-trajectories following a leader).
func (e *Engine) InteractingSet(r float64, obj int) ([]int, error) {
	return e.inner.InteractingSet(r, obj)
}

// AllScores returns every object's exact interaction count at
// threshold r, for score-distribution analysis.
func (e *Engine) AllScores(r float64) ([]int, error) {
	return e.inner.AllScores(r)
}

// Sweep runs top-k queries over a sequence of thresholds. With
// WithLabels (or WithDiskLabels) configured, queries sharing ⌈r⌉ reuse
// the labels collected by the first — the fine-grained analysis
// workload the paper optimises for.
func (e *Engine) Sweep(rs []float64, k int) ([]SweepResult, error) {
	return e.inner.Sweep(rs, k)
}

// InteractingSetContext is InteractingSet with cancellation.
func (e *Engine) InteractingSetContext(ctx context.Context, r float64, obj int) ([]int, error) {
	return e.inner.InteractingSetContext(ctx, r, obj)
}

// AllScoresContext is AllScores with cancellation.
func (e *Engine) AllScoresContext(ctx context.Context, r float64) ([]int, error) {
	return e.inner.AllScoresContext(ctx, r)
}

// SweepContext is Sweep with cancellation: ctx is threaded through
// every per-threshold query, so one deadline bounds the whole sweep.
func (e *Engine) SweepContext(ctx context.Context, rs []float64, k int) ([]SweepResult, error) {
	return e.inner.SweepContext(ctx, rs, k)
}

// ScoreHistogram buckets a score vector into at most the given number
// of equal-width bins, returning bin counts and the bin width.
func ScoreHistogram(scores []int, buckets int) (counts []int, width int) {
	return core.ScoreHistogram(scores, buckets)
}

// TopPercentile returns the score at the given fraction (0..1] of the
// score distribution.
func TopPercentile(scores []int, frac float64) int {
	return core.TopPercentile(scores, frac)
}
